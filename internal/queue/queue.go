// Package queue provides a FIFO queue of point ids with O(1) concatenation,
// the operation MS-BFS performs whenever two search threads meet (Algorithm 3
// line 11 of the DISC paper merges the two threads' queues into one).
//
// Queues come in two flavors sharing one representation: the plain
// Push/Pop methods allocate one node per Push, while PushPool/PopPool route
// nodes through a caller-owned Pool free list so a steady-state traversal
// performs no heap allocations at all. The two flavors interoperate — a
// Concat moves nodes wholesale regardless of where they came from — as long
// as nodes recycled into a Pool are only reused through that Pool.
package queue

// node is a singly-linked chunk holding one id. A linked representation keeps
// Concat O(1); enqueue/dequeue are O(1) as well.
type node struct {
	id   int64
	next *node
}

// Q is a FIFO queue of int64 ids supporting constant-time concatenation.
// The zero value is an empty queue ready for use.
type Q struct {
	head, tail *node
	n          int
}

// Len returns the number of queued ids.
func (q *Q) Len() int { return q.n }

// Empty reports whether the queue holds no ids.
func (q *Q) Empty() bool { return q.n == 0 }

// Push appends id to the back of the queue, allocating its node.
func (q *Q) Push(id int64) { q.pushNode(&node{id: id}) }

// Pop removes and returns the front id. It panics on an empty queue; callers
// must check Empty first.
func (q *Q) Pop() int64 {
	id, _ := q.popNode()
	return id
}

func (q *Q) pushNode(nd *node) {
	if q.tail == nil {
		q.head, q.tail = nd, nd
	} else {
		q.tail.next = nd
		q.tail = nd
	}
	q.n++
}

func (q *Q) popNode() (int64, *node) {
	if q.head == nil {
		panic("queue: Pop on empty queue")
	}
	nd := q.head
	q.head = nd.next
	if q.head == nil {
		q.tail = nil
	}
	q.n--
	nd.next = nil
	return nd.id, nd
}

// Concat moves all ids of other onto the back of q in O(1), leaving other
// empty. Concatenating a queue with itself is a no-op.
func (q *Q) Concat(other *Q) {
	if other == q || other.n == 0 {
		return
	}
	if q.tail == nil {
		q.head, q.tail = other.head, other.tail
	} else {
		q.tail.next = other.head
		q.tail = other.tail
	}
	q.n += other.n
	other.head, other.tail, other.n = nil, nil, 0
}

// Drain empties the queue, calling fn for each id in FIFO order.
func (q *Q) Drain(fn func(int64)) {
	for !q.Empty() {
		fn(q.Pop())
	}
}

// Pool is a free list of queue nodes. Pushing through a pool reuses nodes
// popped (or recycled) through the same pool, so once the pool has grown to
// the high-water node count of a workload, further queue traffic allocates
// nothing. Pools are not safe for concurrent use; keep one per worker.
type Pool struct {
	free  *node
	grown int64
}

// Grown returns how many nodes the pool has ever allocated — its miss
// counter. A steady-state workload shows no further growth, which is how the
// engine's telemetry observes the allocation-free MS-BFS claim.
func (p *Pool) Grown() int64 { return p.grown }

func (p *Pool) get(id int64) *node {
	if nd := p.free; nd != nil {
		p.free = nd.next
		nd.id, nd.next = id, nil
		return nd
	}
	p.grown++
	return &node{id: id}
}

// PushPool appends id to the back of q, drawing the node from pool. A nil
// pool degrades to an allocating Push.
func (q *Q) PushPool(pool *Pool, id int64) {
	if pool == nil {
		q.Push(id)
		return
	}
	q.pushNode(pool.get(id))
}

// PopPool removes and returns the front id, recycling its node into pool.
// It panics on an empty queue. A nil pool degrades to Pop.
func (q *Q) PopPool(pool *Pool) int64 {
	id, nd := q.popNode()
	if pool != nil {
		nd.next = pool.free
		pool.free = nd
	}
	return id
}

// Recycle empties the queue, returning every node to pool in O(Len). Used
// when a traversal exits early and abandons non-empty frontiers.
func (q *Q) Recycle(pool *Pool) {
	if pool == nil {
		q.head, q.tail, q.n = nil, nil, 0
		return
	}
	for nd := q.head; nd != nil; {
		next := nd.next
		nd.next = pool.free
		pool.free = nd
		nd = next
	}
	q.head, q.tail, q.n = nil, nil, 0
}
