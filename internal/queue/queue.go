// Package queue provides a FIFO queue of point ids with O(1) concatenation,
// the operation MS-BFS performs whenever two search threads meet (Algorithm 3
// line 11 of the DISC paper merges the two threads' queues into one).
package queue

// node is a singly-linked chunk holding one id. A linked representation keeps
// Concat O(1); enqueue/dequeue are O(1) amortized as well.
type node struct {
	id   int64
	next *node
}

// Q is a FIFO queue of int64 ids supporting constant-time concatenation.
// The zero value is an empty queue ready for use.
type Q struct {
	head, tail *node
	n          int
}

// Len returns the number of queued ids.
func (q *Q) Len() int { return q.n }

// Empty reports whether the queue holds no ids.
func (q *Q) Empty() bool { return q.n == 0 }

// Push appends id to the back of the queue.
func (q *Q) Push(id int64) {
	nd := &node{id: id}
	if q.tail == nil {
		q.head, q.tail = nd, nd
	} else {
		q.tail.next = nd
		q.tail = nd
	}
	q.n++
}

// Pop removes and returns the front id. It panics on an empty queue; callers
// must check Empty first.
func (q *Q) Pop() int64 {
	if q.head == nil {
		panic("queue: Pop on empty queue")
	}
	nd := q.head
	q.head = nd.next
	if q.head == nil {
		q.tail = nil
	}
	q.n--
	return nd.id
}

// Concat moves all ids of other onto the back of q in O(1), leaving other
// empty. Concatenating a queue with itself is a no-op.
func (q *Q) Concat(other *Q) {
	if other == q || other.n == 0 {
		return
	}
	if q.tail == nil {
		q.head, q.tail = other.head, other.tail
	} else {
		q.tail.next = other.head
		q.tail = other.tail
	}
	q.n += other.n
	other.head, other.tail, other.n = nil, nil, 0
}

// Drain empties the queue, calling fn for each id in FIFO order.
func (q *Q) Drain(fn func(int64)) {
	for !q.Empty() {
		fn(q.Pop())
	}
}
