package queue

import "testing"

func TestFIFOOrder(t *testing.T) {
	var q Q
	for i := int64(0); i < 10; i++ {
		q.Push(i)
	}
	if q.Len() != 10 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := int64(0); i < 10; i++ {
		if got := q.Pop(); got != i {
			t.Fatalf("Pop = %d, want %d", got, i)
		}
	}
	if !q.Empty() {
		t.Fatal("queue not empty after draining")
	}
}

func TestPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pop on empty queue must panic")
		}
	}()
	var q Q
	q.Pop()
}

func TestConcatPreservesOrder(t *testing.T) {
	var a, b Q
	a.Push(1)
	a.Push(2)
	b.Push(3)
	b.Push(4)
	a.Concat(&b)
	if a.Len() != 4 || b.Len() != 0 {
		t.Fatalf("lens = %d, %d", a.Len(), b.Len())
	}
	want := []int64{1, 2, 3, 4}
	for _, w := range want {
		if got := a.Pop(); got != w {
			t.Fatalf("Pop = %d, want %d", got, w)
		}
	}
}

func TestConcatEmptyCases(t *testing.T) {
	var a, b Q
	a.Push(1)
	a.Concat(&b) // empty other
	if a.Len() != 1 {
		t.Fatal("concat with empty changed length")
	}
	var c Q
	c.Concat(&a) // empty receiver
	if c.Len() != 1 || c.Pop() != 1 {
		t.Fatal("concat into empty lost elements")
	}
}

func TestConcatSelfNoop(t *testing.T) {
	var q Q
	q.Push(1)
	q.Push(2)
	q.Concat(&q)
	if q.Len() != 2 {
		t.Fatalf("self-concat changed length: %d", q.Len())
	}
	if q.Pop() != 1 || q.Pop() != 2 {
		t.Fatal("self-concat corrupted order")
	}
}

func TestInterleavedPushPop(t *testing.T) {
	var q Q
	q.Push(1)
	q.Push(2)
	if q.Pop() != 1 {
		t.Fatal("bad order")
	}
	q.Push(3)
	if q.Pop() != 2 || q.Pop() != 3 {
		t.Fatal("interleaving broke FIFO order")
	}
	// Queue reusable after emptying.
	q.Push(4)
	if q.Pop() != 4 {
		t.Fatal("queue unusable after emptying")
	}
}

func TestDrain(t *testing.T) {
	var q Q
	for i := int64(0); i < 5; i++ {
		q.Push(i * 10)
	}
	var got []int64
	q.Drain(func(id int64) { got = append(got, id) })
	if len(got) != 5 || got[0] != 0 || got[4] != 40 {
		t.Fatalf("Drain = %v", got)
	}
	if !q.Empty() {
		t.Fatal("queue not empty after Drain")
	}
}

func BenchmarkPushPop(b *testing.B) {
	var q Q
	for i := 0; i < b.N; i++ {
		q.Push(int64(i))
		q.Pop()
	}
}
