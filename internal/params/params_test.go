package params

import (
	"math"
	"math/rand"
	"testing"

	"disc/internal/dbscan"
	"disc/internal/geom"
	"disc/internal/metrics"
	"disc/internal/model"
)

// blobsWithNoise: three tight Gaussian blobs (σ=0.5) plus sparse uniform
// noise over a 100×100 area — a clean two-regime k-distance curve.
func blobsWithNoise(rng *rand.Rand, n int) ([]model.Point, map[int64]int) {
	truth := make(map[int64]int)
	pts := make([]model.Point, n)
	for i := range pts {
		if rng.Float64() < 0.1 {
			pts[i] = model.Point{ID: int64(i), Pos: geom.NewVec(rng.Float64()*100, rng.Float64()*100)}
			truth[int64(i)] = 0
		} else {
			b := rng.Intn(3)
			cx, cy := float64(b)*30+20, float64(b)*20+20
			pts[i] = model.Point{ID: int64(i), Pos: geom.NewVec(cx+rng.NormFloat64()*0.5, cy+rng.NormFloat64()*0.5)}
			truth[int64(i)] = b + 1
		}
	}
	return pts, truth
}

func TestKDistancesBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts, _ := blobsWithNoise(rng, 1000)
	kd, err := KDistances(pts, 2, 4, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(kd) != len(pts) {
		t.Fatalf("got %d distances, want %d", len(kd), len(pts))
	}
	for i := 1; i < len(kd); i++ {
		if kd[i] > kd[i-1] {
			t.Fatal("k-distance curve not descending")
		}
	}
	// Sampled variant covers fewer points but the same value range.
	sampled, err := KDistances(pts, 2, 4, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sampled) != 100 {
		t.Fatalf("sampled %d, want 100", len(sampled))
	}
	if sampled[0] > kd[0]+1e-9 {
		t.Fatal("sampled max exceeds full max")
	}
}

func TestKDistancesErrors(t *testing.T) {
	if _, err := KDistances(nil, 2, 4, 0, 1); err == nil {
		t.Error("empty input accepted")
	}
	pts := []model.Point{{ID: 1}, {ID: 2, Pos: geom.NewVec(1, 0)}}
	if _, err := KDistances(pts, 2, 0, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KDistances(pts, 2, 5, 0, 1); err == nil {
		t.Error("k >= n accepted")
	}
}

func TestKneeOnSyntheticCurve(t *testing.T) {
	// A hockey-stick: flat tail at 1.0, steep head; knee near the bend.
	kd := make([]float64, 100)
	for i := range kd {
		if i < 10 {
			kd[i] = 10 - float64(i) // steep: 10..1
		} else {
			kd[i] = 1 - float64(i-10)*0.001 // nearly flat
		}
	}
	knee := Knee(kd)
	if knee < 5 || knee > 15 {
		t.Fatalf("knee at %d, want near 10", knee)
	}
	if Knee([]float64{1, 2}) != 0 {
		t.Fatal("short curve must return 0")
	}
}

// TestSuggestRecoversGoodParameters: the suggested (ε, MinPts) must let
// DBSCAN recover the three blobs with high ARI.
func TestSuggestRecoversGoodParameters(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts, truth := blobsWithNoise(rng, 2000)
	sug, err := Suggest(pts, 2, DefaultK(2), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sug.MinPts != 5 {
		t.Fatalf("MinPts = %d, want 5 (k=4 plus self)", sug.MinPts)
	}
	if sug.Eps <= 0 || math.IsNaN(sug.Eps) {
		t.Fatalf("bad eps %g", sug.Eps)
	}
	// ε must land between the blob scale and the noise scale.
	if sug.Eps < 0.05 || sug.Eps > 20 {
		t.Fatalf("eps = %g outside the plausible range", sug.Eps)
	}
	cfg := sug.Config(2)
	snap := dbscan.Run(pts, cfg)
	ari := metrics.ARI(truth, metrics.Labels(snap))
	if ari < 0.8 {
		t.Fatalf("ARI with suggested parameters = %.3f (eps=%g)", ari, sug.Eps)
	}
	t.Logf("suggested eps=%.3f minPts=%d -> ARI %.3f", sug.Eps, sug.MinPts, ari)
}

func TestDefaultK(t *testing.T) {
	if DefaultK(2) != 4 {
		t.Error("2-D default k must be 4")
	}
	if DefaultK(3) != 5 || DefaultK(4) != 7 {
		t.Error("higher-D default k must be 2*dims-1")
	}
}

func TestSuggestDeterministicUnderSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts, _ := blobsWithNoise(rng, 1500)
	a, _ := Suggest(pts, 2, 4, 200, 7)
	b, _ := Suggest(pts, 2, 4, 200, 7)
	if a.Eps != b.Eps || a.KneeIndex != b.KneeIndex {
		t.Fatal("sampled suggestion not deterministic under fixed seed")
	}
}
