// Package params implements the K-distance-graph heuristic for choosing the
// DBSCAN thresholds ε and MinPts, used by the DISC evaluation to set the
// Table II parameters for GeoLife, COVID-19 and IRIS ("we adopted the
// parameter settings used by the previous work based on a K-distance graph"
// — Ester et al. 1996, Schubert et al. 2017).
//
// The heuristic: fix k (MinPts = k+1, counting the point itself), compute
// for every point the distance to its k-th nearest neighbor, sort those
// distances descending, and read ε off the "valley" (knee) of the resulting
// curve — noise points have large k-distances, cluster points small ones,
// and the knee separates the two regimes.
package params

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"disc/internal/geom"
	"disc/internal/model"
	"disc/internal/rtree"
)

// KDistances returns the k-distance of every sampled point, sorted in
// descending order (the K-distance graph). k counts neighbors other than
// the point itself. sample bounds how many points are probed (≤ 0 probes
// all); sampling uses the given seed for reproducibility.
func KDistances(pts []model.Point, dims, k, sample int, seed int64) ([]float64, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("params: no points")
	}
	if k < 1 {
		return nil, fmt.Errorf("params: k must be >= 1, got %d", k)
	}
	if k >= len(pts) {
		return nil, fmt.Errorf("params: k=%d requires more than %d points", k, len(pts))
	}
	tree := rtree.New(dims)
	ids := make([]int64, len(pts))
	positions := make([]geom.Vec, len(pts))
	for i, p := range pts {
		ids[i] = p.ID
		positions[i] = p.Pos
	}
	tree.BulkLoad(ids, positions)

	probe := pts
	if sample > 0 && sample < len(pts) {
		rng := rand.New(rand.NewSource(seed))
		probe = make([]model.Point, sample)
		perm := rng.Perm(len(pts))[:sample]
		for i, idx := range perm {
			probe[i] = pts[idx]
		}
	}
	out := make([]float64, 0, len(probe))
	for _, p := range probe {
		// k+1 nearest including the point itself; the last is the k-th
		// neighbor proper.
		nn := tree.KNN(p.Pos, k+1)
		out = append(out, math.Sqrt(nn[len(nn)-1].Dist2))
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out, nil
}

// Knee returns the index of the maximum-curvature point of a descending
// k-distance curve, located as the point with the largest perpendicular
// distance to the chord between the curve's endpoints — the standard
// "kneedle"-style geometric criterion, robust to the curve's scale.
func Knee(kd []float64) int {
	n := len(kd)
	if n < 3 {
		return 0
	}
	x1, y1 := 0.0, kd[0]
	x2, y2 := float64(n-1), kd[n-1]
	dx, dy := x2-x1, y2-y1
	norm := math.Hypot(dx, dy)
	best, bestIdx := -1.0, 0
	for i := 1; i < n-1; i++ {
		// Perpendicular distance from (i, kd[i]) to the chord.
		d := math.Abs(dy*float64(i)-dx*kd[i]+x2*y1-y2*x1) / norm
		if d > best {
			best, bestIdx = d, i
		}
	}
	return bestIdx
}

// Suggestion is the estimated clustering configuration.
type Suggestion struct {
	Eps       float64
	MinPts    int       // k+1, counting the point itself
	KDistance []float64 // the descending k-distance curve used
	KneeIndex int
}

// Suggest estimates ε and MinPts for the given points with the K-distance
// heuristic at the given k. For 2-dimensional data, k = 4 is the classic
// recommendation of Ester et al.; higher dimensions typically use
// k = 2·dims - 1 (Schubert et al.).
func Suggest(pts []model.Point, dims, k, sample int, seed int64) (Suggestion, error) {
	kd, err := KDistances(pts, dims, k, sample, seed)
	if err != nil {
		return Suggestion{}, err
	}
	knee := Knee(kd)
	return Suggestion{
		Eps:       kd[knee],
		MinPts:    k + 1,
		KDistance: kd,
		KneeIndex: knee,
	}, nil
}

// Config converts the suggestion into an engine configuration.
func (s Suggestion) Config(dims int) model.Config {
	return model.Config{Dims: dims, Eps: s.Eps, MinPts: s.MinPts}
}

// DefaultK returns the conventional k for the dimensionality: 4 for 2-D
// (Ester et al.), otherwise 2·dims - 1 (Schubert et al.).
func DefaultK(dims int) int {
	if dims <= 2 {
		return 4
	}
	return 2*dims - 1
}
