// Package bench is the experiment harness that regenerates every table and
// figure of the DISC paper's evaluation (§VI) on the synthetic dataset
// analogs. Each figure has a driver that runs the relevant engines, prints
// the paper-style table of rows/series, and returns structured results.
//
// Window sizes are scaled down from Table II of the paper by a constant
// factor so each experiment finishes on laptop-class hardware; the
// stride-to-window ratios, threshold values, and engine line-ups match the
// paper. EXPERIMENTS.md records the paper-reported shape next to the shape
// measured here.
package bench

import (
	"fmt"

	"disc/internal/datasets"
	"disc/internal/model"
)

// DataConfig fixes a dataset analog and its Table II parameters.
type DataConfig struct {
	Dataset string       // generator name for datasets.ByName
	Label   string       // display name matching the paper
	Window  int          // scaled default window size (points)
	Cfg     model.Config // dims, ε, τ
	Seed    int64
}

// Defaults returns the scaled Table II configuration for a dataset analog.
// The paper's values (window in parentheses) are: DTG τ=372 ε=0.002 (2M),
// GeoLife τ=7 ε=0.01 (200K), COVID-19 τ=5 ε=1.2 (15K), IRIS τ=9 ε=2 (200K).
// Windows here are scaled by ~1/100 (COVID by 1/3, it is small already);
// DTG's density threshold is scaled with its window so that the
// core/border/noise mix of the workload is preserved.
func Defaults(name string) (DataConfig, error) {
	switch name {
	case "dtg":
		return DataConfig{
			Dataset: "dtg", Label: "DTG", Window: 20000,
			Cfg: model.Config{Dims: 2, Eps: 0.002, MinPts: 40}, Seed: 42,
		}, nil
	case "geolife":
		return DataConfig{
			Dataset: "geolife", Label: "GeoLife", Window: 2000,
			Cfg: model.Config{Dims: 3, Eps: 0.01, MinPts: 7}, Seed: 42,
		}, nil
	case "covid":
		return DataConfig{
			Dataset: "covid", Label: "COVID-19", Window: 5000,
			Cfg: model.Config{Dims: 2, Eps: 1.2, MinPts: 5}, Seed: 42,
		}, nil
	case "iris":
		return DataConfig{
			Dataset: "iris", Label: "IRIS", Window: 5000,
			Cfg: model.Config{Dims: 4, Eps: 2, MinPts: 9}, Seed: 42,
		}, nil
	case "maze":
		return DataConfig{
			Dataset: "maze", Label: "Maze", Window: 8000,
			Cfg: model.Config{Dims: 2, Eps: 0.6, MinPts: 4}, Seed: 42,
		}, nil
	default:
		return DataConfig{}, fmt.Errorf("bench: no default config for %q", name)
	}
}

// EvalDatasets lists the four real-dataset analogs of the baseline
// evaluation, in the paper's order.
func EvalDatasets() []string { return []string{"dtg", "geolife", "covid", "iris"} }

// Scaled returns a copy of dc with the window (and DTG's density threshold,
// which tracks window density) multiplied by f.
func (dc DataConfig) Scaled(f float64) DataConfig {
	out := dc
	out.Window = int(float64(dc.Window) * f)
	if out.Window < 100 {
		out.Window = 100
	}
	if dc.Dataset == "dtg" {
		mp := int(float64(dc.Cfg.MinPts) * f)
		if mp < 3 {
			mp = 3
		}
		out.Cfg.MinPts = mp
	}
	return out
}

// Stream generates the dataset stream long enough to run the given number
// of strides after the initial window fill.
func (dc DataConfig) Stream(stride, numStrides int) (datasets.Dataset, error) {
	n := dc.Window + stride*numStrides
	return datasets.ByName(dc.Dataset, n, dc.Seed)
}
