package bench

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"text/tabwriter"
	"time"

	"disc/internal/core"
	"disc/internal/dbscan"
	"disc/internal/dbstream"
	"disc/internal/denstream"
	"disc/internal/dstream"
	"disc/internal/edmstream"
	"disc/internal/metrics"
	"disc/internal/model"
	"disc/internal/trace"
	"disc/internal/window"
)

// Options configures a figure run.
type Options struct {
	Out       io.Writer     // table destination; default os.Stdout
	Scale     float64       // multiplies Table II windows; default 1
	Strides   int           // measured strides per engine run; default 10
	Timeout   time.Duration // per engine run; default 2m
	MemoryCap int64         // EXTRA-N bookkeeping budget; default 5M items
	OutDir    string        // Fig. 12 artifact directory; default "out"
	Seed      int64         // dataset seed override; 0 keeps defaults
	// StrideLog, when non-nil, is attached as the stride observer of every
	// engine that supports one (the DISC variants), producing one JSONL
	// record per measured stride plus exact latency percentiles.
	StrideLog *StrideLogger
	// Tracer, when non-nil, is attached alongside StrideLog to every
	// engine that supports tracing: each measured stride records a span
	// tree, slow strides are retained in the tracer's slow ring, and their
	// trace ids are stamped into the stride log.
	Tracer *trace.Tracer
}

func (o *Options) fill() {
	if o.Out == nil {
		o.Out = os.Stdout
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Strides <= 0 {
		o.Strides = 10
	}
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Minute
	}
	if o.MemoryCap <= 0 {
		o.MemoryCap = 5_000_000
	}
	if o.OutDir == "" {
		o.OutDir = "out"
	}
}

// Row is one data point of a regenerated figure.
type Row struct {
	Figure  string             `json:"figure"`
	Dataset string             `json:"dataset"`
	Param   string             `json:"param"` // x-axis value ("stride=5%", "window=2x", "eps=0.004", ...)
	Engine  string             `json:"engine"`
	Value   float64            `json:"value"` // primary metric (speedup, ms, searches, ARI, µs/point)
	Unit    string             `json:"unit"`
	Extra   map[string]float64 `json:"extra,omitempty"`
	DNF     bool               `json:"dnf,omitempty"`
	Note    string             `json:"note,omitempty"`
}

func (o Options) config(name string) (DataConfig, error) {
	dc, err := Defaults(name)
	if err != nil {
		return dc, err
	}
	dc = dc.Scaled(o.Scale)
	if o.Seed != 0 {
		dc.Seed = o.Seed
	}
	return dc, nil
}

// ratioStride returns a stride approximating ratio*window that divides the
// window evenly (EXTRA-N requires it; it also keeps strides comparable).
func ratioStride(win int, ratio float64) int {
	k := int(math.Round(1 / ratio))
	if k < 1 {
		k = 1
	}
	for win%k != 0 && k > 1 {
		k--
	}
	s := win / k
	if s < 1 {
		s = 1
	}
	return s
}

func (o Options) steps(dc DataConfig, stride int) ([]window.Step, error) {
	n := o.Strides
	// Tiny strides are cheap and individually noisy: measure more of them.
	if extra := dc.Window / (20 * stride); extra > n {
		n = extra
		if n > 64 {
			n = 64
		}
	}
	ds, err := dc.Stream(stride, n)
	if err != nil {
		return nil, err
	}
	return window.Steps(ds.Points, dc.Window, stride)
}

func (o Options) runKind(kind string, cfg model.Config, win, stride int, steps []window.Step, opts RunOpts) (RunResult, error) {
	eng, err := NewEngine(kind, cfg, win, stride)
	if err != nil {
		return RunResult{}, err
	}
	opts = o.observed(kind, opts)
	if opts.Timeout == 0 {
		opts.Timeout = o.Timeout
	}
	if kind == "extran" && opts.MemoryCap == 0 {
		opts.MemoryCap = o.MemoryCap
	}
	return Run(eng, steps, opts), nil
}

// observed attaches the stride logger (when one is configured) to a run,
// labeling its records with the engine under test. Figures that build
// engines outside runKind use this directly.
func (o Options) observed(engine string, opts RunOpts) RunOpts {
	if o.StrideLog != nil {
		o.StrideLog.SetEngine(engine)
		opts.Observer = o.StrideLog
	}
	if o.Tracer != nil {
		opts.Tracer = o.Tracer
	}
	return opts
}

// Table2 prints the Table II analog: thresholds and (scaled) window sizes.
func Table2(o Options) error {
	o.fill()
	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tdims\tdensity (τ)\tdistance (ε)\twindow (scaled)\tpaper window")
	paper := map[string]string{"dtg": "2M (~10 min)", "geolife": "200K (~fortnight)", "covid": "15K (~fortnight)", "iris": "200K (~decade)"}
	for _, name := range EvalDatasets() {
		dc, err := o.config(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%g\t%d\t%s\n",
			dc.Label, dc.Cfg.Dims, dc.Cfg.MinPts, dc.Cfg.Eps, dc.Window, paper[name])
	}
	return tw.Flush()
}

// Fig4 regenerates Figure 4: relative speedup over DBSCAN with a varying
// stride size (as a fraction of the window), for all four dataset analogs.
func Fig4(o Options) ([]Row, error) {
	o.fill()
	ratios := []float64{0.001, 0.01, 0.05, 0.10, 0.25}
	engines := []string{"disc", "incdbscan", "extran"}
	var rows []Row
	for _, name := range EvalDatasets() {
		dc, err := o.config(name)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(o.Out, "\n[Fig 4] %s: speedup over DBSCAN vs stride (window=%d, eps=%g, minPts=%d)\n",
			dc.Label, dc.Window, dc.Cfg.Eps, dc.Cfg.MinPts)
		tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "stride\tDBSCAN ms\tDISC\tIncDBSCAN\tEXTRA-N")
		for _, ratio := range ratios {
			stride := ratioStride(dc.Window, ratio)
			steps, err := o.steps(dc, stride)
			if err != nil {
				return nil, err
			}
			base, err := o.runKind("dbscan", dc.Cfg, dc.Window, stride, steps, RunOpts{})
			if err != nil {
				return nil, err
			}
			line := fmt.Sprintf("%.1f%%\t%.1f", ratio*100, msOf(base.PerStride))
			for _, kind := range engines {
				res, err := o.runKind(kind, dc.Cfg, dc.Window, stride, steps, RunOpts{})
				if err != nil {
					return nil, err
				}
				speedup := speedupOf(base, res)
				rows = append(rows, Row{
					Figure: "4", Dataset: dc.Label,
					Param: fmt.Sprintf("stride=%.1f%%", ratio*100), Engine: res.Engine,
					Value: speedup, Unit: "x", DNF: res.DNF, Note: res.DNFReason,
				})
				if res.DNF {
					line += "\tDNF"
				} else {
					line += fmt.Sprintf("\t%.2fx", speedup)
				}
			}
			fmt.Fprintln(tw, line)
		}
		tw.Flush()
	}
	return rows, nil
}

// Fig5 regenerates Figure 5: relative speedup over DBSCAN with a varying
// window size at a fixed 5% stride. EXTRA-N runs under the scaled memory
// budget and may DNF, as in the paper.
func Fig5(o Options) ([]Row, error) {
	o.fill()
	factors := []float64{0.5, 1, 2, 4}
	engines := []string{"disc", "incdbscan", "extran"}
	var rows []Row
	for _, name := range EvalDatasets() {
		base0, err := o.config(name)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(o.Out, "\n[Fig 5] %s: speedup over DBSCAN vs window (stride=5%%)\n", base0.Label)
		tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "window\tDBSCAN ms\tDISC\tIncDBSCAN\tEXTRA-N")
		for _, f := range factors {
			dc := base0.Scaled(f)
			stride := ratioStride(dc.Window, 0.05)
			steps, err := o.steps(dc, stride)
			if err != nil {
				return nil, err
			}
			base, err := o.runKind("dbscan", dc.Cfg, dc.Window, stride, steps, RunOpts{})
			if err != nil {
				return nil, err
			}
			line := fmt.Sprintf("%d\t%.1f", dc.Window, msOf(base.PerStride))
			for _, kind := range engines {
				res, err := o.runKind(kind, dc.Cfg, dc.Window, stride, steps, RunOpts{})
				if err != nil {
					return nil, err
				}
				speedup := speedupOf(base, res)
				rows = append(rows, Row{
					Figure: "5", Dataset: dc.Label,
					Param: fmt.Sprintf("window=%d", dc.Window), Engine: res.Engine,
					Value: speedup, Unit: "x", DNF: res.DNF, Note: res.DNFReason,
				})
				if res.DNF {
					line += "\tDNF"
				} else {
					line += fmt.Sprintf("\t%.2fx", speedup)
				}
			}
			fmt.Fprintln(tw, line)
		}
		tw.Flush()
	}
	return rows, nil
}

// Fig6 regenerates Figure 6: elapsed time of the incremental methods on the
// DTG analog with varying distance (a) and density (b) thresholds; stride 5%.
func Fig6(o Options) ([]Row, error) {
	o.fill()
	dc, err := o.config("dtg")
	if err != nil {
		return nil, err
	}
	engines := []string{"disc", "incdbscan", "extran"}
	var rows []Row

	run := func(sub, param string, cfg model.Config) error {
		stride := ratioStride(dc.Window, 0.05)
		dcv := dc
		dcv.Cfg = cfg
		steps, err := o.steps(dcv, stride)
		if err != nil {
			return err
		}
		line := param
		for _, kind := range engines {
			res, err := o.runKind(kind, cfg, dc.Window, stride, steps, RunOpts{})
			if err != nil {
				return err
			}
			rows = append(rows, Row{
				Figure: "6" + sub, Dataset: dc.Label, Param: param, Engine: res.Engine,
				Value: msOf(res.PerStride), Unit: "ms", DNF: res.DNF, Note: res.DNFReason,
			})
			if res.DNF {
				line += "\tDNF"
			} else {
				line += fmt.Sprintf("\t%.1f", msOf(res.PerStride))
			}
		}
		fmt.Fprintln(o.Out, line)
		return nil
	}

	fmt.Fprintf(o.Out, "\n[Fig 6a] DTG: elapsed ms per stride vs distance threshold (τ=%d)\n", dc.Cfg.MinPts)
	fmt.Fprintln(o.Out, "eps\tDISC\tIncDBSCAN\tEXTRA-N")
	for _, f := range []float64{0.5, 1, 2, 4} {
		cfg := dc.Cfg
		cfg.Eps = dc.Cfg.Eps * f
		if err := run("a", fmt.Sprintf("eps=%g", cfg.Eps), cfg); err != nil {
			return nil, err
		}
	}
	fmt.Fprintf(o.Out, "\n[Fig 6b] DTG: elapsed ms per stride vs density threshold (eps=%g)\n", dc.Cfg.Eps)
	fmt.Fprintln(o.Out, "tau\tDISC\tIncDBSCAN\tEXTRA-N")
	for _, f := range []float64{0.25, 0.5, 1, 2} {
		cfg := dc.Cfg
		cfg.MinPts = int(float64(dc.Cfg.MinPts) * f)
		if cfg.MinPts < 2 {
			cfg.MinPts = 2
		}
		if err := run("b", fmt.Sprintf("tau=%d", cfg.MinPts), cfg); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// Fig7 regenerates Figure 7: range searches executed per stride. (a) all
// datasets at 5% stride; (b) DTG across stride ratios, relative to DBSCAN.
func Fig7(o Options) ([]Row, error) {
	o.fill()
	var rows []Row
	fmt.Fprintln(o.Out, "\n[Fig 7a] range searches per stride (stride=5%)")
	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\tDBSCAN\tIncDBSCAN\tDISC")
	for _, name := range EvalDatasets() {
		dc, err := o.config(name)
		if err != nil {
			return nil, err
		}
		stride := ratioStride(dc.Window, 0.05)
		steps, err := o.steps(dc, stride)
		if err != nil {
			return nil, err
		}
		line := dc.Label
		for _, kind := range []string{"dbscan", "incdbscan", "disc"} {
			res, err := o.runKind(kind, dc.Cfg, dc.Window, stride, steps, RunOpts{})
			if err != nil {
				return nil, err
			}
			rows = append(rows, Row{
				Figure: "7a", Dataset: dc.Label, Param: "stride=5%", Engine: res.Engine,
				Value: res.Searches, Unit: "searches/stride",
			})
			line += fmt.Sprintf("\t%.0f", res.Searches)
		}
		fmt.Fprintln(tw, line)
	}
	tw.Flush()

	dc, err := o.config("dtg")
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(o.Out, "\n[Fig 7b] DTG: range searches relative to DBSCAN vs stride")
	tw = tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "stride\tIncDBSCAN\tDISC")
	for _, ratio := range []float64{0.01, 0.05, 0.10, 0.25} {
		stride := ratioStride(dc.Window, ratio)
		steps, err := o.steps(dc, stride)
		if err != nil {
			return nil, err
		}
		base, err := o.runKind("dbscan", dc.Cfg, dc.Window, stride, steps, RunOpts{})
		if err != nil {
			return nil, err
		}
		line := fmt.Sprintf("%.0f%%", ratio*100)
		for _, kind := range []string{"incdbscan", "disc"} {
			res, err := o.runKind(kind, dc.Cfg, dc.Window, stride, steps, RunOpts{})
			if err != nil {
				return nil, err
			}
			rel := res.Searches / base.Searches
			rows = append(rows, Row{
				Figure: "7b", Dataset: dc.Label,
				Param: fmt.Sprintf("stride=%.0f%%", ratio*100), Engine: res.Engine,
				Value: rel, Unit: "rel. to DBSCAN",
			})
			line += fmt.Sprintf("\t%.3f", rel)
		}
		fmt.Fprintln(tw, line)
	}
	return rows, tw.Flush()
}

// Fig8 regenerates Figure 8: the ablation of MS-BFS and epoch-based probing;
// elapsed per stride for the four DISC variants at 5% stride.
func Fig8(o Options) ([]Row, error) {
	o.fill()
	variants := []struct{ kind, label string }{
		{"disc-plain", "neither"},
		{"disc-nomsbfs", "epoch only"},
		{"disc-noepoch", "MS-BFS only"},
		{"disc", "both"},
	}
	var rows []Row
	fmt.Fprintln(o.Out, "\n[Fig 8] DISC optimizations: elapsed ms per stride (stride=5%)")
	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\tneither\tepoch only\tMS-BFS only\tboth")
	for _, name := range EvalDatasets() {
		dc, err := o.config(name)
		if err != nil {
			return nil, err
		}
		stride := ratioStride(dc.Window, 0.05)
		steps, err := o.steps(dc, stride)
		if err != nil {
			return nil, err
		}
		line := dc.Label
		for _, v := range variants {
			res, err := o.runKind(v.kind, dc.Cfg, dc.Window, stride, steps, RunOpts{})
			if err != nil {
				return nil, err
			}
			rows = append(rows, Row{
				Figure: "8", Dataset: dc.Label, Param: v.label, Engine: "DISC",
				Value: msOf(res.PerStride), Unit: "ms",
			})
			line += fmt.Sprintf("\t%.1f", msOf(res.PerStride))
		}
		fmt.Fprintln(tw, line)
	}
	return rows, tw.Flush()
}

// qualityEngines is the engine line-up of the quality/latency comparison
// (Figs. 9 and 10) — exactly the methods the paper compares.
func qualityEngines() []string {
	return []string{"disc", "rho2-0.1", "rho2-0.001", "dbstream", "edmstream"}
}

// extendedQualityEngines adds the two summarization baselines this
// repository implements beyond the paper's line-up.
func extendedQualityEngines() []string {
	return append(qualityEngines(), "denstream", "dstream")
}

// FigExt1 is an extension experiment (not in the paper): the Fig. 9 Maze
// quality/latency sweep over the full summarization family, adding
// DenStream (Cao et al. 2006) and D-Stream (Chen & Tu 2007).
func FigExt1(o Options) ([]Row, error) {
	o.fill()
	return o.qualityFigureWith("ext1", "maze", []float64{0.5, 1, 2, 4}, extendedQualityEngines())
}

// newQualityEngine constructs engines for the quality figures. Following the
// paper — the summarization-based methods "were evaluated with parameter
// settings that helped them achieve the best ARI" — DBSTREAM and EDMStream
// get a decay half-life matched to the window span, so their forgetting
// horizon approximates the hard window as well as decay can.
func newQualityEngine(kind string, cfg model.Config, win, stride int) (model.Engine, error) {
	lambda := math.Ln2 / float64(win)
	switch kind {
	case "dbstream":
		return dbstream.New(cfg, dbstream.Options{
			Lambda: lambda, GapTime: int64(stride), WeightMin: 1.2, Alpha: 0.05,
		})
	case "edmstream":
		return edmstream.New(cfg, edmstream.Options{Lambda: lambda, OutlierW: 1})
	case "denstream":
		return denstream.New(cfg, denstream.Options{Lambda: lambda})
	case "dstream":
		return dstream.New(cfg, dstream.Options{Lambda: lambda})
	default:
		return NewEngine(kind, cfg, win, stride)
	}
}

// Fig9 regenerates Figure 9: ARI and per-point update latency on Maze with a
// varying window size; stride 5%.
func Fig9(o Options) ([]Row, error) {
	o.fill()
	return o.qualityFigure("9", "maze", []float64{0.5, 1, 2, 4})
}

// Fig10 regenerates Figure 10: ARI (truth = DBSCAN labels) and per-point
// update latency on the DTG analog with a varying window size; stride 5%.
func Fig10(o Options) ([]Row, error) {
	o.fill()
	return o.qualityFigure("10", "dtg", []float64{0.25, 0.5, 1, 2})
}

// qualityFigure runs the paper's quality/latency comparison on one dataset
// over a sweep of window factors.
func (o Options) qualityFigure(fig, dataset string, factors []float64) ([]Row, error) {
	return o.qualityFigureWith(fig, dataset, factors, qualityEngines())
}

// qualityFigureWith runs the quality/latency comparison with an explicit
// engine line-up.
func (o Options) qualityFigureWith(fig, dataset string, factors []float64, engines []string) ([]Row, error) {
	base0, err := o.config(dataset)
	if err != nil {
		return nil, err
	}
	var rows []Row
	fmt.Fprintf(o.Out, "\n[Fig %s] %s: ARI and per-point latency vs window (stride=5%%)\n", fig, base0.Label)
	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "window\tengine\tARI\tlatency µs/point")
	for _, f := range factors {
		dc := base0.Scaled(f)
		stride := ratioStride(dc.Window, 0.05)
		ds, err := dc.Stream(stride, o.Strides)
		if err != nil {
			return nil, err
		}
		steps, err := window.Steps(ds.Points, dc.Window, stride)
		if err != nil {
			return nil, err
		}
		// Ground truth per sampled stride: the generator's labels for Maze,
		// a from-scratch DBSCAN run for DTG (as in the paper).
		sampleEvery := 3
		truthOf := func(_ int, win []model.Point) map[int64]int {
			if ds.Truth != nil {
				t := make(map[int64]int, len(win))
				for _, p := range win {
					t[p.ID] = ds.Truth[p.ID]
				}
				return t
			}
			return metrics.Labels(dbscan.Run(win, dc.Cfg))
		}
		for _, kind := range engines {
			// Timing pass.
			teng, err := newQualityEngine(kind, dc.Cfg, dc.Window, stride)
			if err != nil {
				return nil, err
			}
			res := Run(teng, steps, RunOpts{Timeout: o.Timeout})
			// Quality pass on a fresh engine (snapshots kept off the timed path).
			qeng, err := newQualityEngine(kind, dc.Cfg, dc.Window, stride)
			if err != nil {
				return nil, err
			}
			ari, _ := Quality(qeng, steps, sampleEvery, truthOf)
			rows = append(rows, Row{
				Figure: fig, Dataset: dc.Label,
				Param: fmt.Sprintf("window=%d", dc.Window), Engine: res.Engine,
				Value: ari, Unit: "ARI",
				Extra: map[string]float64{"latency_us": usOf(res.PerPoint)},
				DNF:   res.DNF, Note: res.DNFReason,
			})
			fmt.Fprintf(tw, "%d\t%s\t%.3f\t%.1f\n", dc.Window, res.Engine, ari, usOf(res.PerPoint))
		}
	}
	return rows, tw.Flush()
}

// FigExt2 is an extension experiment (not in the paper): the per-phase
// wall-clock breakdown of DISC (COLLECT / ex-core / neo-core / finalize) on
// every dataset analog at a 5% stride — the drill-down behind §VI-D.
func FigExt2(o Options) ([]Row, error) {
	o.fill()
	var rows []Row
	fmt.Fprintln(o.Out, "\n[Fig ext2] DISC phase breakdown: ms per stride (stride=5%)")
	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\tCOLLECT\tex-cores\tneo-cores\tfinalize\ttotal")
	for _, name := range EvalDatasets() {
		dc, err := o.config(name)
		if err != nil {
			return nil, err
		}
		stride := ratioStride(dc.Window, 0.05)
		steps, err := o.steps(dc, stride)
		if err != nil {
			return nil, err
		}
		eng := core.New(dc.Cfg)
		res := Run(eng, steps, o.observed("disc", RunOpts{Timeout: o.Timeout}))
		pt := eng.PhaseTimings()
		n := float64(res.Strides)
		if n == 0 {
			n = 1
		}
		phases := []struct {
			name string
			ms   float64
		}{
			{"collect", msOf(pt.Collect) / n},
			{"excores", msOf(pt.ExCores) / n},
			{"neocores", msOf(pt.NeoCores) / n},
			{"finalize", msOf(pt.Finalize) / n},
		}
		line := dc.Label
		for _, ph := range phases {
			rows = append(rows, Row{
				Figure: "ext2", Dataset: dc.Label, Param: ph.name, Engine: "DISC",
				Value: ph.ms, Unit: "ms",
			})
			line += fmt.Sprintf("\t%.1f", ph.ms)
		}
		line += fmt.Sprintf("\t%.1f", msOf(pt.Total())/n)
		fmt.Fprintln(tw, line)
	}
	return rows, tw.Flush()
}

// FigExt3 is an extension experiment (not in the paper): scaling of the
// parallel COLLECT phase with the worker count, on the DTG analog at a 25%
// stride (arrival-heavy, so COLLECT dominates the per-stride cost). The merge
// is exactness-preserving, so every worker count produces the identical
// clustering; only the wall clock changes. Speedups are bounded by
// GOMAXPROCS — on a single-core host every worker count degenerates to ~1x.
func FigExt3(o Options) ([]Row, error) {
	o.fill()
	dc, err := o.config("dtg")
	if err != nil {
		return nil, err
	}
	stride := ratioStride(dc.Window, 0.25)
	steps, err := o.steps(dc, stride)
	if err != nil {
		return nil, err
	}
	var rows []Row
	gmp := runtime.GOMAXPROCS(0)
	fmt.Fprintf(o.Out, "\n[Fig ext3] %s: parallel COLLECT scaling (stride=25%%, GOMAXPROCS=%d)\n",
		dc.Label, gmp)
	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workers\tCOLLECT ms\tstride ms\tCOLLECT speedup\tpoints/s\tCOLLECT allocs/stride")
	var baseCollect float64
	for _, w := range []int{1, 2, 4, 8} {
		eng := core.New(dc.Cfg, core.WithWorkers(w), core.WithAllocTracking(true))
		res := Run(eng, steps, o.observed(fmt.Sprintf("disc-w%d", w), RunOpts{Timeout: o.Timeout}))
		n := float64(res.Strides)
		if n == 0 {
			n = 1
		}
		collectMS := msOf(eng.PhaseTimings().Collect) / n
		if w == 1 {
			baseCollect = collectMS
		}
		var speedup float64
		if collectMS > 0 {
			speedup = baseCollect / collectMS
		}
		var pps float64
		if res.PerPoint > 0 {
			pps = float64(time.Second) / float64(res.PerPoint)
		}
		al := eng.PhaseAllocs()
		rows = append(rows, Row{
			Figure: "ext3", Dataset: dc.Label,
			Param: fmt.Sprintf("workers=%d", w), Engine: "DISC",
			Value: collectMS, Unit: "ms",
			Extra: map[string]float64{
				"speedup":           speedup,
				"points_per_sec":    pps,
				"stride_ms":         msOf(res.PerStride),
				"gomaxprocs":        float64(gmp),
				"effective_workers": float64(minInt(w, gmp)),
				"collect_allocs_op": float64(al.CollectObjs) / n,
				"collect_bytes_op":  float64(al.CollectBytes) / n,
			},
			DNF: res.DNF, Note: parallelismNote(res.DNFReason, w, gmp),
		})
		fmt.Fprintf(tw, "%d\t%.1f\t%.1f\t%.2fx\t%.0f\t%.0f\n",
			w, collectMS, msOf(res.PerStride), speedup, pps, float64(al.CollectObjs)/n)
	}
	warnOversubscribed(o, tw, gmp)
	return rows, tw.Flush()
}

// minInt is the two-arg integer min (the builtin needs Go 1.21 but reads
// poorly next to float conversions).
func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// parallelismNote annotates a worker-scaling row whose configured fan-out
// exceeds the host's scheduler parallelism: its "speedup" measures goroutine
// oversubscription, not parallel capacity, and must not be read as the
// algorithm failing (or succeeding) to scale. The summary header records
// gomaxprocs once per file, but rows are routinely copied out of context
// into plots and diffs — each oversubscribed row carries the caveat itself.
func parallelismNote(base string, workers, gmp int) string {
	if workers <= gmp {
		return base
	}
	note := fmt.Sprintf("oversubscribed: workers=%d > GOMAXPROCS=%d", workers, gmp)
	if base == "" {
		return note
	}
	return base + "; " + note
}

// warnOversubscribed prints the oversubscription caveat under a scaling
// table when any of the standard worker counts exceeds the host's
// parallelism.
func warnOversubscribed(o Options, tw *tabwriter.Writer, gmp int) {
	if gmp >= 8 { // largest standard worker count
		return
	}
	tw.Flush()
	fmt.Fprintf(o.Out, "warning: worker counts above GOMAXPROCS=%d are oversubscribed; their speedups reflect scheduling, not parallel capacity\n", gmp)
}

// FigExt4 is an extension experiment (not in the paper): scaling of the
// parallel CLUSTER phase (ex-core + neo-core processing) with the worker
// count, on the DTG analog at a 25% stride — heavy churn makes every stride
// carry large retro-/nascent-reachable components. The capture/fold split is
// exactness-preserving, so every worker count produces the identical
// clustering and event stream; only the wall clock changes. Speedups are
// bounded by GOMAXPROCS — on a single-core host every worker count
// degenerates to ~1x. Each run also samples per-phase heap allocations
// (WithAllocTracking), recording allocs and bytes per stride for COLLECT and
// CLUSTER next to the timing curve.
func FigExt4(o Options) ([]Row, error) {
	o.fill()
	dc, err := o.config("dtg")
	if err != nil {
		return nil, err
	}
	stride := ratioStride(dc.Window, 0.25)
	steps, err := o.steps(dc, stride)
	if err != nil {
		return nil, err
	}
	var rows []Row
	gmp := runtime.GOMAXPROCS(0)
	fmt.Fprintf(o.Out, "\n[Fig ext4] %s: parallel CLUSTER scaling (stride=25%%, GOMAXPROCS=%d)\n",
		dc.Label, gmp)
	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workers\tCLUSTER ms\tstride ms\tCLUSTER speedup\tCLUSTER allocs/stride\tCLUSTER KB/stride")
	var baseCluster float64
	for _, w := range []int{1, 2, 4, 8} {
		eng := core.New(dc.Cfg, core.WithWorkers(w), core.WithAllocTracking(true))
		res := Run(eng, steps, o.observed(fmt.Sprintf("disc-w%d", w), RunOpts{Timeout: o.Timeout}))
		n := float64(res.Strides)
		if n == 0 {
			n = 1
		}
		pt := eng.PhaseTimings()
		clusterMS := (msOf(pt.ExCores) + msOf(pt.NeoCores)) / n
		if w == 1 {
			baseCluster = clusterMS
		}
		var speedup float64
		if clusterMS > 0 {
			speedup = baseCluster / clusterMS
		}
		al := eng.PhaseAllocs()
		rows = append(rows, Row{
			Figure: "ext4", Dataset: dc.Label,
			Param: fmt.Sprintf("workers=%d", w), Engine: "DISC",
			Value: clusterMS, Unit: "ms",
			Extra: map[string]float64{
				"speedup":            speedup,
				"stride_ms":          msOf(res.PerStride),
				"collect_ms":         msOf(pt.Collect) / n,
				"gomaxprocs":         float64(gmp),
				"effective_workers":  float64(minInt(w, gmp)),
				"advance_allocs_op":  float64(al.TotalObjs()) / n,
				"advance_bytes_op":   float64(al.TotalBytes()) / n,
				"collect_allocs_op":  float64(al.CollectObjs) / n,
				"collect_bytes_op":   float64(al.CollectBytes) / n,
				"cluster_allocs_op":  float64(al.ClusterObjs) / n,
				"cluster_bytes_op":   float64(al.ClusterBytes) / n,
				"finalize_allocs_op": float64(al.FinalizeObjs) / n,
				"finalize_bytes_op":  float64(al.FinalizeBytes) / n,
			},
			DNF: res.DNF, Note: parallelismNote(res.DNFReason, w, gmp),
		})
		fmt.Fprintf(tw, "%d\t%.1f\t%.1f\t%.2fx\t%.0f\t%.1f\n",
			w, clusterMS, msOf(res.PerStride), speedup,
			float64(al.ClusterObjs)/n, float64(al.ClusterBytes)/n/1024)
	}
	warnOversubscribed(o, tw, gmp)
	return rows, tw.Flush()
}

// connAccum is a pass-through core.Observer that accumulates the
// connectivity-strategy cost columns of FigExt5 while forwarding every
// record to the stride logger (an engine holds a single observer).
type connAccum struct {
	next           core.Observer
	connDur        time.Duration
	forestDur      time.Duration
	connSearches   int64
	connNodes      int64
	forestOps      int64
	replSearches   int64
	forestRebuilds int64
}

// ObserveStride implements core.Observer.
func (a *connAccum) ObserveStride(rec core.StrideRecord) {
	a.connDur += rec.Connectivity
	a.forestDur += rec.ForestUpdate
	a.connSearches += rec.ConnSearches
	a.connNodes += rec.ConnNodes
	a.forestOps += rec.ForestOps
	a.replSearches += rec.ForestReplSearches
	a.forestRebuilds += rec.ForestRebuilds
	if a.next != nil {
		a.next.ObserveStride(rec)
	}
}

// FigExt5 is an extension experiment (not in the paper): the cost of the two
// connectivity strategies — per-stride MS-BFS re-traversal vs the maintained
// dyncon forest — on the DTG analog at a 25% stride, where heavy churn makes
// every stride carry split-candidate connectivity checks. Both strategies are
// exactness-preserving (bit-identical labels, events, and stats), so the
// figure compares only what each one pays: traversal time and searches for
// MS-BFS, forest-sync time and mutation counts for the dynamic forest.
func FigExt5(o Options) ([]Row, error) {
	o.fill()
	dc, err := o.config("dtg")
	if err != nil {
		return nil, err
	}
	stride := ratioStride(dc.Window, 0.25)
	steps, err := o.steps(dc, stride)
	if err != nil {
		return nil, err
	}
	variants := []struct {
		kind     string
		strategy core.ConnStrategy
	}{
		{"disc", core.ConnMSBFS},
		{"disc-dyncon", core.ConnDynamic},
	}
	var rows []Row
	fmt.Fprintf(o.Out, "\n[Fig ext5] %s: connectivity strategy cost (stride=25%%)\n", dc.Label)
	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "strategy\tstride ms\tconn ms\tforest ms\tsearches/stride\tforest ops/stride\trebuilds")
	for _, v := range variants {
		eng := core.New(dc.Cfg, core.WithConnectivity(v.strategy))
		acc := &connAccum{}
		runOpts := o.observed(v.kind, RunOpts{Timeout: o.Timeout})
		acc.next = runOpts.Observer
		runOpts.Observer = acc
		res := Run(eng, steps, runOpts)
		n := float64(res.Strides)
		if n == 0 {
			n = 1
		}
		connMS := msOf(acc.connDur) / n
		forestMS := msOf(acc.forestDur) / n
		rows = append(rows, Row{
			Figure: "ext5", Dataset: dc.Label,
			Param: "strategy=" + v.strategy.String(), Engine: "DISC",
			Value: connMS, Unit: "ms",
			Extra: map[string]float64{
				"stride_ms":        msOf(res.PerStride),
				"forest_ms":        forestMS,
				"conn_searches_op": float64(acc.connSearches) / n,
				"conn_nodes_op":    float64(acc.connNodes) / n,
				"forest_ops_op":    float64(acc.forestOps) / n,
				"repl_searches_op": float64(acc.replSearches) / n,
				"forest_rebuilds":  float64(acc.forestRebuilds),
			},
			DNF: res.DNF, Note: res.DNFReason,
		})
		fmt.Fprintf(tw, "%s\t%.1f\t%.3f\t%.3f\t%.0f\t%.0f\t%d\n",
			v.strategy, msOf(res.PerStride), connMS, forestMS,
			float64(acc.connSearches)/n, float64(acc.forestOps)/n, acc.forestRebuilds)
	}
	return rows, tw.Flush()
}

// Fig11 regenerates Figure 11: per-point update latency of DISC vs
// ρ²-DBSCAN (ρ=0.001) across distance thresholds, on Maze and DTG; the
// crossover appears only at thresholds too coarse to be useful.
func Fig11(o Options) ([]Row, error) {
	o.fill()
	sweeps := []struct {
		dataset string
		epses   []float64
	}{
		{"maze", []float64{0.2, 0.4, 0.8, 1.6, 3.2}},
		{"dtg", []float64{0.002, 0.008, 0.032, 0.128, 0.512}},
	}
	engines := []string{"disc", "rho2-0.001"}
	var rows []Row
	for _, sw := range sweeps {
		dc, err := o.config(sw.dataset)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(o.Out, "\n[Fig 11] %s: per-point latency (µs) vs eps (stride=5%%)\n", dc.Label)
		tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "eps\tDISC\trho2(0.001)\tclusters(DISC)")
		for _, eps := range sw.epses {
			dcv := dc
			dcv.Cfg.Eps = eps
			stride := ratioStride(dcv.Window, 0.05)
			steps, err := o.steps(dcv, stride)
			if err != nil {
				return nil, err
			}
			line := fmt.Sprintf("%g", eps)
			var clusters int
			for _, kind := range engines {
				eng, err := NewEngine(kind, dcv.Cfg, dcv.Window, stride)
				if err != nil {
					return nil, err
				}
				res := Run(eng, steps, RunOpts{Timeout: o.Timeout})
				if kind == "disc" {
					clusters = countClusters(eng.Snapshot())
				}
				rows = append(rows, Row{
					Figure: "11", Dataset: dcv.Label,
					Param: fmt.Sprintf("eps=%g", eps), Engine: res.Engine,
					Value: usOf(res.PerPoint), Unit: "us/point",
					Extra: map[string]float64{"clusters": float64(clusters)},
					DNF:   res.DNF, Note: res.DNFReason,
				})
				if res.DNF {
					line += "\tDNF"
				} else {
					line += fmt.Sprintf("\t%.1f", usOf(res.PerPoint))
				}
			}
			fmt.Fprintf(tw, "%s\t%d\n", line, clusters)
		}
		tw.Flush()
	}
	return rows, nil
}

// Fig12 regenerates Figure 12: the clusters found by DISC, EDMStream and
// DBSTREAM on Maze and DTG, written as CSV dumps (x, y, cluster) and drawn
// as coarse ASCII rasters.
func Fig12(o Options) ([]Row, error) {
	o.fill()
	if err := os.MkdirAll(o.OutDir, 0o755); err != nil {
		return nil, err
	}
	engines := []string{"disc", "edmstream", "dbstream"}
	var rows []Row
	for _, dataset := range []string{"maze", "dtg"} {
		dc, err := o.config(dataset)
		if err != nil {
			return nil, err
		}
		stride := ratioStride(dc.Window, 0.05)
		steps, err := o.steps(dc, stride)
		if err != nil {
			return nil, err
		}
		for _, kind := range engines {
			eng, err := NewEngine(kind, dc.Cfg, dc.Window, stride)
			if err != nil {
				return nil, err
			}
			for _, st := range steps {
				eng.Advance(st.In, st.Out)
			}
			snap := eng.Snapshot()
			final := steps[len(steps)-1].Window
			path := filepath.Join(o.OutDir, fmt.Sprintf("fig12_%s_%s.csv", dataset, kind))
			if err := dumpCSV(path, final, snap); err != nil {
				return nil, err
			}
			n := countClusters(snap)
			rows = append(rows, Row{
				Figure: "12", Dataset: dc.Label, Param: "final window", Engine: eng.Name(),
				Value: float64(n), Unit: "clusters", Note: path,
			})
			fmt.Fprintf(o.Out, "\n[Fig 12] %s / %s: %d clusters -> %s\n", dc.Label, eng.Name(), n, path)
			raster(o.Out, final, snap, 72, 20)
		}
	}
	return rows, nil
}

func dumpCSV(path string, win []model.Point, snap map[int64]model.Assignment) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintln(f, "x,y,label,cluster"); err != nil {
		return err
	}
	for _, p := range win {
		a := snap[p.ID]
		if _, err := fmt.Fprintf(f, "%g,%g,%s,%d\n", p.Pos[0], p.Pos[1], a.Label, a.ClusterID); err != nil {
			return err
		}
	}
	return nil
}

// raster draws the window as a w×h character grid: digits/letters encode
// distinct clusters, '.' is noise, ' ' is empty.
func raster(out io.Writer, win []model.Point, snap map[int64]model.Assignment, w, h int) {
	if len(win) == 0 {
		return
	}
	minX, maxX := win[0].Pos[0], win[0].Pos[0]
	minY, maxY := win[0].Pos[1], win[0].Pos[1]
	for _, p := range win {
		minX = math.Min(minX, p.Pos[0])
		maxX = math.Max(maxX, p.Pos[0])
		minY = math.Min(minY, p.Pos[1])
		maxY = math.Max(maxY, p.Pos[1])
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	glyphs := "123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
	glyphOf := map[int]byte{}
	cells := make([][]byte, h)
	for i := range cells {
		cells[i] = make([]byte, w)
		for j := range cells[i] {
			cells[i][j] = ' '
		}
	}
	for _, p := range win {
		x := int(float64(w-1) * (p.Pos[0] - minX) / (maxX - minX))
		y := int(float64(h-1) * (p.Pos[1] - minY) / (maxY - minY))
		a := snap[p.ID]
		if a.ClusterID == model.NoCluster {
			if cells[y][x] == ' ' {
				cells[y][x] = '.'
			}
			continue
		}
		g, ok := glyphOf[a.ClusterID]
		if !ok {
			g = glyphs[len(glyphOf)%len(glyphs)]
			glyphOf[a.ClusterID] = g
		}
		cells[y][x] = g
	}
	for i := h - 1; i >= 0; i-- {
		fmt.Fprintf(out, "  %s\n", cells[i])
	}
}

func countClusters(snap map[int64]model.Assignment) int {
	set := map[int]bool{}
	for _, a := range snap {
		if a.ClusterID != model.NoCluster {
			set[a.ClusterID] = true
		}
	}
	return len(set)
}

func msOf(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
func usOf(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1000 }

func speedupOf(base, res RunResult) float64 {
	if res.PerStride <= 0 {
		return 0
	}
	return float64(base.PerStride) / float64(res.PerStride)
}

// Figures maps figure ids to their drivers, for cmd/discbench.
func Figures() map[string]func(Options) ([]Row, error) {
	return map[string]func(Options) ([]Row, error){
		"4": Fig4, "5": Fig5, "6": Fig6, "7": Fig7,
		"8": Fig8, "9": Fig9, "10": Fig10, "11": Fig11, "12": Fig12,
		"ext1": FigExt1, "ext2": FigExt2, "ext3": FigExt3, "ext4": FigExt4,
		"ext5": FigExt5,
	}
}

// FigureIDs returns the figure ids in presentation order.
func FigureIDs() []string {
	return []string{"4", "5", "6", "7", "8", "9", "10", "11", "12", "ext1", "ext2", "ext3", "ext4", "ext5"}
}
