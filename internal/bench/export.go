package bench

import (
	"encoding/csv"
	"fmt"
	"os"
	"sort"
	"strconv"
)

// WriteRowsCSV writes figure rows to a CSV file for plotting: one line per
// (figure, dataset, param, engine) data point, with auxiliary metrics
// flattened into extra columns. Rows from several figures can be appended
// into one slice and exported together.
func WriteRowsCSV(path string, rows []Row) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()

	// Collect the union of extra-metric names for stable columns.
	extraKeys := map[string]bool{}
	for _, r := range rows {
		for k := range r.Extra {
			extraKeys[k] = true
		}
	}
	extras := make([]string, 0, len(extraKeys))
	for k := range extraKeys {
		extras = append(extras, k)
	}
	sort.Strings(extras)

	header := []string{"figure", "dataset", "param", "engine", "value", "unit", "dnf", "note"}
	header = append(header, extras...)
	if err := w.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Figure, r.Dataset, r.Param, r.Engine,
			strconv.FormatFloat(r.Value, 'g', -1, 64),
			r.Unit, strconv.FormatBool(r.DNF), r.Note,
		}
		for _, k := range extras {
			if v, ok := r.Extra[k]; ok {
				rec = append(rec, strconv.FormatFloat(v, 'g', -1, 64))
			} else {
				rec = append(rec, "")
			}
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return fmt.Errorf("bench: writing %s: %w", path, err)
	}
	return nil
}
