package bench

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"time"
)

// WriteRowsCSV writes figure rows to a CSV file for plotting: one line per
// (figure, dataset, param, engine) data point, with auxiliary metrics
// flattened into extra columns. Rows from several figures can be appended
// into one slice and exported together.
func WriteRowsCSV(path string, rows []Row) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()

	// Collect the union of extra-metric names for stable columns.
	extraKeys := map[string]bool{}
	for _, r := range rows {
		for k := range r.Extra {
			extraKeys[k] = true
		}
	}
	extras := make([]string, 0, len(extraKeys))
	for k := range extraKeys {
		extras = append(extras, k)
	}
	sort.Strings(extras)

	header := []string{"figure", "dataset", "param", "engine", "value", "unit", "dnf", "note"}
	header = append(header, extras...)
	if err := w.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Figure, r.Dataset, r.Param, r.Engine,
			strconv.FormatFloat(r.Value, 'g', -1, 64),
			r.Unit, strconv.FormatBool(r.DNF), r.Note,
		}
		for _, k := range extras {
			if v, ok := r.Extra[k]; ok {
				rec = append(rec, strconv.FormatFloat(v, 'g', -1, 64))
			} else {
				rec = append(rec, "")
			}
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return fmt.Errorf("bench: writing %s: %w", path, err)
	}
	return nil
}

// Summary is the machine-readable report written by WriteRowsJSON: the raw
// figure rows plus enough host metadata to compare runs across machines
// (worker-scaling numbers are meaningless without the core count).
type Summary struct {
	GeneratedAt string   `json:"generated_at"`
	GoVersion   string   `json:"go_version"`
	GOOS        string   `json:"goos"`
	GOARCH      string   `json:"goarch"`
	NumCPU      int      `json:"num_cpu"`
	GOMAXPROCS  int      `json:"gomaxprocs"`
	Rows        []Row    `json:"rows"`
	Figures     []string `json:"figures"`
	// StrideLatency carries exact per-stride latency percentiles over every
	// observed DISC stride of the run; present only when a stride log was
	// active (discbench -stridelog).
	StrideLatency *LatencySummary `json:"stride_latency,omitempty"`
}

// WriteRowsJSON writes the rows as a JSON throughput summary (the
// BENCH_disc.json artifact emitted by cmd/discbench and CI). lat may be
// nil when no stride observer was attached.
func WriteRowsJSON(path string, rows []Row, lat *LatencySummary) error {
	figSet := map[string]bool{}
	var figs []string
	for _, r := range rows {
		if !figSet[r.Figure] {
			figSet[r.Figure] = true
			figs = append(figs, r.Figure)
		}
	}
	sum := Summary{
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Rows:          rows,
		Figures:       figs,
		StrideLatency: lat,
	}
	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: encoding %s: %w", path, err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("bench: writing %s: %w", path, err)
	}
	return nil
}
