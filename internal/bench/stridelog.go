package bench

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"

	"disc/internal/core"
)

// StrideLogger is a core.Observer that writes one JSON line per stride to
// a sink — the telemetry the paper's §VI-D drill-down plots, captured at
// full per-stride resolution instead of run-level means — and accumulates
// every stride's total latency so the run can report exact percentiles.
//
// The runner attaches it to every engine that supports observers (the
// DISC variants); baselines without the hook simply produce no lines. One
// logger can span many runs: SetFigure/SetEngine update the context
// stamped on subsequent records.
type StrideLogger struct {
	mu      sync.Mutex
	enc     *json.Encoder
	engine  string    // engine kind of the current run
	figure  string    // figure id of the current run
	samples []float64 // stride total durations, seconds
	lines   int
	// traceThresh gates trace-id stamping: a record carries its trace_id
	// only when the stride's total latency reached this threshold (and a
	// tracer was attached), so the JSONL points at exactly the traces the
	// tracer's slow ring retains. Zero stamps every traced stride.
	traceThresh time.Duration
}

// StrideLogRecord is the JSONL wire form of one observed stride.
type StrideLogRecord struct {
	Figure string `json:"figure,omitempty"`
	Engine string `json:"engine"`
	Stride uint64 `json:"stride"`

	In       int `json:"in"`
	Out      int `json:"out"`
	Window   int `json:"window"`
	ExCores  int `json:"ex_cores"`
	NeoCores int `json:"neo_cores"`

	CollectMS  float64 `json:"collect_ms"`
	ExCoresMS  float64 `json:"ex_cores_ms"`
	NeoCoresMS float64 `json:"neo_cores_ms"`
	FinalizeMS float64 `json:"finalize_ms"`
	TotalMS    float64 `json:"total_ms"`

	RangeSearches int64 `json:"range_searches"`
	NodeAccesses  int64 `json:"node_accesses"`
	EpochPruned   int64 `json:"epoch_pruned"`
	MSBFSMerges   int64 `json:"msbfs_merges"`

	Emergences   int `json:"emergences,omitempty"`
	Expansions   int `json:"expansions,omitempty"`
	Mergers      int `json:"mergers,omitempty"`
	Splits       int `json:"splits,omitempty"`
	Shrinks      int `json:"shrinks,omitempty"`
	Dissipations int `json:"dissipations,omitempty"`

	Workers        int   `json:"workers"`
	ClusterWorkers int   `json:"cluster_workers"`
	ConnChecks     int   `json:"conn_checks,omitempty"`
	PoolGrows      int64 `json:"pool_grows,omitempty"`

	// Connectivity-strategy cost: how the configured strategy (conn_strategy)
	// paid for the stride's connectivity answers. Traversal fields stay zero
	// under the dynamic forest; forest fields stay zero under MS-BFS.
	ConnStrategy   string  `json:"conn_strategy,omitempty"`
	ConnMS         float64 `json:"conn_ms,omitempty"`
	ForestMS       float64 `json:"forest_ms,omitempty"`
	ConnSearches   int64   `json:"conn_searches,omitempty"`
	ForestOps      int64   `json:"forest_ops,omitempty"`
	ForestRebuilds int64   `json:"forest_rebuilds,omitempty"`

	// TraceID names the stride's recorded span tree (slow strides only,
	// per the logger's trace threshold); look it up in the tracer's JSON
	// dump or at GET /debug/traces when serving.
	TraceID string `json:"trace_id,omitempty"`
}

// NewStrideLogger returns a logger writing JSON lines to w. A nil w keeps
// the percentile accumulation but writes nothing.
func NewStrideLogger(w io.Writer) *StrideLogger {
	l := &StrideLogger{}
	if w != nil {
		l.enc = json.NewEncoder(w)
	}
	return l
}

// SetFigure stamps the figure id onto subsequent records (set once per
// figure driver by cmd/discbench).
func (l *StrideLogger) SetFigure(figure string) {
	l.mu.Lock()
	l.figure = figure
	l.mu.Unlock()
}

// SetEngine stamps the engine kind onto subsequent records (set per run by
// the runner when it attaches the logger).
func (l *StrideLogger) SetEngine(engine string) {
	l.mu.Lock()
	l.engine = engine
	l.mu.Unlock()
}

// SetTraceThreshold sets the minimum stride latency at which records carry
// their trace id (see StrideLogRecord.TraceID).
func (l *StrideLogger) SetTraceThreshold(d time.Duration) {
	l.mu.Lock()
	l.traceThresh = d
	l.mu.Unlock()
}

// ObserveStride implements core.Observer.
func (l *StrideLogger) ObserveStride(rec core.StrideRecord) {
	ms := func(d interface{ Seconds() float64 }) float64 { return d.Seconds() * 1e3 }
	l.mu.Lock()
	defer l.mu.Unlock()
	l.samples = append(l.samples, rec.Total.Seconds())
	if l.enc == nil {
		return
	}
	l.lines++
	var traceID string
	if rec.TraceID != "" && rec.Total >= l.traceThresh {
		traceID = rec.TraceID
	}
	// Encoding errors (a full disk mid-bench) are deliberately swallowed:
	// the stride log is an artifact, not the measurement.
	_ = l.enc.Encode(StrideLogRecord{
		Figure: l.figure, Engine: l.engine, Stride: rec.Stride,
		In: rec.DeltaIn, Out: rec.DeltaOut, Window: rec.WindowSize,
		ExCores: rec.ExCores, NeoCores: rec.NeoCores,
		CollectMS: ms(rec.Collect), ExCoresMS: ms(rec.ExCorePhase),
		NeoCoresMS: ms(rec.NeoCorePhase), FinalizeMS: ms(rec.Finalize),
		TotalMS:       ms(rec.Total),
		RangeSearches: rec.RangeSearches, NodeAccesses: rec.NodeAccesses,
		EpochPruned: rec.EpochPruned, MSBFSMerges: rec.MSBFSMerges,
		Emergences: rec.Emergences, Expansions: rec.Expansions,
		Mergers: rec.Mergers, Splits: rec.Splits,
		Shrinks: rec.Shrinks, Dissipations: rec.Dissipations,
		Workers: rec.Workers, ClusterWorkers: rec.ClusterWorkers,
		ConnChecks: rec.ConnChecks, PoolGrows: rec.PoolGrows,
		ConnStrategy: rec.ConnStrategy,
		ConnMS:       ms(rec.Connectivity), ForestMS: ms(rec.ForestUpdate),
		ConnSearches: rec.ConnSearches, ForestOps: rec.ForestOps,
		ForestRebuilds: rec.ForestRebuilds,
		TraceID:        traceID,
	})
}

// Lines returns how many records have been written.
func (l *StrideLogger) Lines() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lines
}

// LatencySummary reports exact stride-latency percentiles over every
// observed stride (all engines and figures pooled), in milliseconds. It is
// embedded in the BENCH_disc.json summary.
type LatencySummary struct {
	Strides int     `json:"strides"`
	P50MS   float64 `json:"p50_ms"`
	P90MS   float64 `json:"p90_ms"`
	P95MS   float64 `json:"p95_ms"`
	P99MS   float64 `json:"p99_ms"`
	MaxMS   float64 `json:"max_ms"`
}

// Summary computes exact percentiles from the accumulated samples; nil
// when no strides were observed.
func (l *StrideLogger) Summary() *LatencySummary {
	l.mu.Lock()
	samples := append([]float64(nil), l.samples...)
	l.mu.Unlock()
	if len(samples) == 0 {
		return nil
	}
	sort.Float64s(samples)
	pick := func(q float64) float64 {
		i := int(q*float64(len(samples)) + 0.5)
		if i >= len(samples) {
			i = len(samples) - 1
		}
		return samples[i] * 1e3
	}
	return &LatencySummary{
		Strides: len(samples),
		P50MS:   pick(0.50),
		P90MS:   pick(0.90),
		P95MS:   pick(0.95),
		P99MS:   pick(0.99),
		MaxMS:   samples[len(samples)-1] * 1e3,
	}
}
