package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"disc/internal/core"
	"disc/internal/metrics"
	"disc/internal/model"
	"disc/internal/trace"
	"disc/internal/window"
)

// small returns Options tuned for fast tests.
func small() Options {
	return Options{
		Out:     &bytes.Buffer{},
		Scale:   0.2,
		Strides: 4,
		Timeout: 30 * time.Second,
	}
}

func TestDefaultsCoverEvalDatasets(t *testing.T) {
	for _, name := range EvalDatasets() {
		dc, err := Defaults(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := dc.Cfg.Validate(); err != nil {
			t.Errorf("%s: invalid config: %v", name, err)
		}
		if dc.Window <= 0 {
			t.Errorf("%s: bad window", name)
		}
	}
	if _, err := Defaults("nope"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestScaled(t *testing.T) {
	dc, _ := Defaults("dtg")
	half := dc.Scaled(0.5)
	if half.Window != dc.Window/2 {
		t.Errorf("window not scaled: %d", half.Window)
	}
	if half.Cfg.MinPts >= dc.Cfg.MinPts {
		t.Errorf("DTG minPts must scale with window: %d", half.Cfg.MinPts)
	}
	tiny := dc.Scaled(0.000001)
	if tiny.Window < 100 || tiny.Cfg.MinPts < 3 {
		t.Errorf("floors not applied: %+v", tiny)
	}
	g, _ := Defaults("geolife")
	if g.Scaled(0.5).Cfg.MinPts != g.Cfg.MinPts {
		t.Error("non-DTG minPts must not scale")
	}
}

func TestNewEngineKinds(t *testing.T) {
	dc, _ := Defaults("covid")
	for _, kind := range EngineKinds() {
		eng, err := NewEngine(kind, dc.Cfg, 1000, 100)
		if err != nil {
			t.Errorf("%s: %v", kind, err)
			continue
		}
		if eng.Name() == "" {
			t.Errorf("%s: empty name", kind)
		}
	}
	if _, err := NewEngine("bogus", dc.Cfg, 1000, 100); err == nil {
		t.Error("bogus engine kind accepted")
	}
}

func TestRatioStrideDividesWindow(t *testing.T) {
	for _, win := range []int{100, 4000, 20000, 12345} {
		for _, ratio := range []float64{0.001, 0.01, 0.05, 0.10, 0.25, 1} {
			s := ratioStride(win, ratio)
			if s < 1 || s > win {
				t.Fatalf("ratioStride(%d, %g) = %d out of range", win, ratio, s)
			}
			if win%s != 0 {
				t.Fatalf("ratioStride(%d, %g) = %d does not divide", win, ratio, s)
			}
		}
	}
}

func TestRunTimeoutDNF(t *testing.T) {
	dc, _ := Defaults("covid")
	dc = dc.Scaled(0.2)
	stride := ratioStride(dc.Window, 0.25)
	o := small()
	steps, err := o.steps(dc, stride)
	if err != nil {
		t.Fatal(err)
	}
	eng, _ := NewEngine("dbscan", dc.Cfg, dc.Window, stride)
	res := Run(eng, steps, RunOpts{Timeout: 1 * time.Nanosecond})
	if !res.DNF || !strings.Contains(res.DNFReason, "timeout") {
		t.Fatalf("expected timeout DNF, got %+v", res)
	}
}

func TestRunMemoryCapDNF(t *testing.T) {
	dc, _ := Defaults("covid")
	dc = dc.Scaled(0.2)
	stride := ratioStride(dc.Window, 0.25)
	o := small()
	steps, err := o.steps(dc, stride)
	if err != nil {
		t.Fatal(err)
	}
	eng, _ := NewEngine("extran", dc.Cfg, dc.Window, stride)
	res := Run(eng, steps, RunOpts{MemoryCap: 1})
	if !res.DNF || !strings.Contains(res.DNFReason, "memory") {
		t.Fatalf("expected memory DNF, got %+v", res)
	}
}

func TestTable2(t *testing.T) {
	var buf bytes.Buffer
	o := small()
	o.Out = &buf
	if err := Table2(o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"DTG", "GeoLife", "COVID-19", "IRIS"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 output missing %s", want)
		}
	}
}

// TestFig7Shape asserts the deterministic search-count ordering the paper
// reports: DISC <= IncDBSCAN <= DBSCAN on every dataset.
func TestFig7Shape(t *testing.T) {
	rows, err := Fig7(small())
	if err != nil {
		t.Fatal(err)
	}
	perDataset := map[string]map[string]float64{}
	for _, r := range rows {
		if r.Figure != "7a" {
			continue
		}
		if perDataset[r.Dataset] == nil {
			perDataset[r.Dataset] = map[string]float64{}
		}
		perDataset[r.Dataset][r.Engine] = r.Value
	}
	if len(perDataset) != 4 {
		t.Fatalf("7a covers %d datasets, want 4", len(perDataset))
	}
	for ds, m := range perDataset {
		if !(m["DISC"] <= m["IncDBSCAN"] && m["IncDBSCAN"] <= m["DBSCAN"]) {
			t.Errorf("%s: search ordering violated: %+v", ds, m)
		}
	}
	// 7b: DISC's relative searches must stay below 1 (it beats DBSCAN).
	for _, r := range rows {
		if r.Figure == "7b" && r.Engine == "DISC" && r.Param != "stride=25%" && r.Value >= 1 {
			t.Errorf("7b: DISC relative searches %.3f >= 1 at %s", r.Value, r.Param)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	rows, err := Fig8(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("Fig8 rows = %d, want 16 (4 datasets x 4 variants)", len(rows))
	}
	// "both" must not be slower than "neither" by more than noise.
	byKey := map[string]float64{}
	for _, r := range rows {
		byKey[r.Dataset+"/"+r.Param] = r.Value
	}
	for _, ds := range []string{"DTG", "IRIS"} {
		if byKey[ds+"/both"] > byKey[ds+"/neither"] {
			t.Errorf("%s: optimized DISC slower than unoptimized (%.1f > %.1f)",
				ds, byKey[ds+"/both"], byKey[ds+"/neither"])
		}
	}
}

func TestFig9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("quality figure skipped in -short mode")
	}
	o := small()
	o.Strides = 6
	rows, err := Fig9(o)
	if err != nil {
		t.Fatal(err)
	}
	// DISC must dominate the summarization engines on ARI at every window.
	byKey := map[string]float64{}
	for _, r := range rows {
		byKey[r.Param+"/"+r.Engine] = r.Value
	}
	for _, r := range rows {
		if r.Engine != "DISC" {
			continue
		}
		if r.Value < 0.9 {
			t.Errorf("DISC ARI %.3f < 0.9 at %s", r.Value, r.Param)
		}
		for _, summ := range []string{"DBSTREAM", "EDMStream"} {
			if byKey[r.Param+"/"+summ] > r.Value {
				t.Errorf("%s beats DISC on ARI at %s", summ, r.Param)
			}
		}
	}
}

func TestFig12WritesArtifacts(t *testing.T) {
	o := small()
	o.OutDir = t.TempDir()
	rows, err := Fig12(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("Fig12 rows = %d, want 6 (2 datasets x 3 engines)", len(rows))
	}
	files, _ := filepath.Glob(filepath.Join(o.OutDir, "fig12_*.csv"))
	if len(files) != 6 {
		t.Fatalf("found %d CSV dumps, want 6", len(files))
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "x,y,label,cluster\n") {
		t.Error("CSV dump missing header")
	}
}

func TestFig4SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("timing figure skipped in -short mode")
	}
	o := small()
	o.Strides = 3
	rows, err := Fig4(o)
	if err != nil {
		t.Fatal(err)
	}
	// 4 datasets x 5 ratios x 3 engines.
	if len(rows) != 60 {
		t.Fatalf("Fig4 rows = %d, want 60", len(rows))
	}
	// At the smallest stride, DISC must beat from-scratch DBSCAN.
	for _, r := range rows {
		if r.Engine == "DISC" && r.Param == "stride=0.1%" && !r.DNF && r.Value <= 1 {
			t.Errorf("%s: DISC speedup %.2fx <= 1 at 0.1%% stride", r.Dataset, r.Value)
		}
	}
}

func TestQualityHelper(t *testing.T) {
	dc, _ := Defaults("maze")
	dc = dc.Scaled(0.1)
	stride := ratioStride(dc.Window, 0.10)
	ds, err := dc.Stream(stride, 4)
	if err != nil {
		t.Fatal(err)
	}
	o := small()
	steps, err := o.steps(dc, stride)
	if err != nil {
		t.Fatal(err)
	}
	eng, _ := NewEngine("disc", dc.Cfg, dc.Window, stride)
	ari, samples := Quality(eng, steps, 1, func(_ int, win []model.Point) map[int64]int {
		t := make(map[int64]int, len(win))
		for _, p := range win {
			t[p.ID] = ds.Truth[p.ID]
		}
		return t
	})
	if samples == 0 {
		t.Fatal("no quality samples")
	}
	if ari < 0.9 {
		t.Errorf("DISC ARI on maze = %.3f", ari)
	}
}

func TestWriteRowsCSV(t *testing.T) {
	rows := []Row{
		{Figure: "4", Dataset: "DTG", Param: "stride=5%", Engine: "DISC", Value: 2.5, Unit: "x"},
		{Figure: "9", Dataset: "Maze", Param: "window=8000", Engine: "DBSTREAM", Value: 0.3, Unit: "ARI",
			Extra: map[string]float64{"latency_us": 1.6}, DNF: false},
		{Figure: "5", Dataset: "DTG", Param: "window=80000", Engine: "EXTRA-N", Value: 0, Unit: "x",
			DNF: true, Note: "memory cap exceeded"},
	}
	path := filepath.Join(t.TempDir(), "rows.csv")
	if err := WriteRowsCSV(path, rows); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	if !strings.HasPrefix(out, "figure,dataset,param,engine,value,unit,dnf,note,latency_us\n") {
		t.Fatalf("bad header: %q", strings.SplitN(out, "\n", 2)[0])
	}
	if !strings.Contains(out, "9,Maze,window=8000,DBSTREAM,0.3,ARI,false,,1.6") {
		t.Fatalf("missing extra column row:\n%s", out)
	}
	if !strings.Contains(out, "memory cap exceeded") {
		t.Fatal("DNF note lost")
	}
	if c := strings.Count(strings.TrimSpace(out), "\n"); c != 3 {
		t.Fatalf("line count %d, want 3 data lines + header", c)
	}
}

// TestWorkersExactOnAllDatasets pins the tentpole acceptance criterion on
// every built-in dataset generator: a WithWorkers(8) engine must produce a
// clustering identical to the sequential engine at every stride — both as an
// exact per-point snapshot and through the SameClustering oracle.
func TestWorkersExactOnAllDatasets(t *testing.T) {
	for _, name := range append(EvalDatasets(), "maze") {
		t.Run(name, func(t *testing.T) {
			dc, err := Defaults(name)
			if err != nil {
				t.Fatal(err)
			}
			dc = dc.Scaled(0.05)
			stride := ratioStride(dc.Window, 0.25)
			ds, err := dc.Stream(stride, 4)
			if err != nil {
				t.Fatal(err)
			}
			steps, err := window.Steps(ds.Points, dc.Window, stride)
			if err != nil {
				t.Fatal(err)
			}
			seq := core.New(dc.Cfg)
			par := core.New(dc.Cfg, core.WithWorkers(8))
			for i, st := range steps {
				seq.Advance(st.In, st.Out)
				par.Advance(st.In, st.Out)
				want, got := seq.Snapshot(), par.Snapshot()
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("step %d: parallel snapshot differs from sequential", i)
				}
				if err := metrics.SameClustering(got, want, st.Window, dc.Cfg); err != nil {
					t.Fatalf("step %d: %v", i, err)
				}
			}
		})
	}
}

func TestStrideLogger(t *testing.T) {
	var jsonl bytes.Buffer
	lg := NewStrideLogger(&jsonl)
	o := small()
	o.StrideLog = lg
	o.fill()
	lg.SetFigure("ext1")
	dc, err := o.config("dtg")
	if err != nil {
		t.Fatal(err)
	}
	stride := dc.Window / 10
	steps, err := o.steps(dc, stride)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.runKind("disc", dc.Cfg, dc.Window, stride, steps, RunOpts{}); err != nil {
		t.Fatal(err)
	}
	if lg.Lines() == 0 {
		t.Fatal("stride logger recorded no strides")
	}
	// Every line is valid JSON with the identifying context and sane timings.
	dec := json.NewDecoder(&jsonl)
	lines := 0
	for dec.More() {
		var rec StrideLogRecord
		if err := dec.Decode(&rec); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		lines++
		if rec.Figure != "ext1" || rec.Engine == "" {
			t.Fatalf("line %d missing context: %+v", lines, rec)
		}
		if rec.Stride == 0 || rec.TotalMS <= 0 || rec.Window <= 0 {
			t.Fatalf("line %d implausible: %+v", lines, rec)
		}
	}
	if lines != lg.Lines() {
		t.Fatalf("decoded %d lines, logger counted %d", lines, lg.Lines())
	}
	sum := lg.Summary()
	if sum == nil || sum.Strides != lines {
		t.Fatalf("summary %+v, want %d strides", sum, lines)
	}
	if sum.P50MS <= 0 || sum.P50MS > sum.P95MS || sum.P95MS > sum.MaxMS {
		t.Fatalf("percentiles out of order: %+v", sum)
	}
}

// TestStrideLoggerNilWriter covers the percentiles-only mode used when
// -stridelog is absent but a latency summary is still wanted.
func TestStrideLoggerNilWriter(t *testing.T) {
	lg := NewStrideLogger(nil)
	lg.ObserveStride(core.StrideRecord{Stride: 1, Total: 5 * time.Millisecond})
	lg.ObserveStride(core.StrideRecord{Stride: 2, Total: 10 * time.Millisecond})
	if lg.Lines() != 0 {
		t.Fatalf("nil-writer logger wrote %d lines", lg.Lines())
	}
	sum := lg.Summary()
	if sum == nil || sum.Strides != 2 || sum.MaxMS < 9.9 {
		t.Fatalf("summary %+v", sum)
	}
}

// TestStrideLoggerTraceStamping drives a DISC run with a tracer attached
// and checks that stride-log records carry the trace ids of their recorded
// span trees, gated by the logger's latency threshold.
func TestStrideLoggerTraceStamping(t *testing.T) {
	var jsonl bytes.Buffer
	lg := NewStrideLogger(&jsonl)
	o := small()
	o.StrideLog = lg
	o.Tracer = trace.NewTracer(trace.Config{})
	o.fill()
	dc, err := o.config("dtg")
	if err != nil {
		t.Fatal(err)
	}
	stride := dc.Window / 10
	steps, err := o.steps(dc, stride)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.runKind("disc", dc.Cfg, dc.Window, stride, steps, RunOpts{}); err != nil {
		t.Fatal(err)
	}
	// Threshold zero: every traced stride is stamped with a 32-hex id.
	dec := json.NewDecoder(&jsonl)
	for dec.More() {
		var rec StrideLogRecord
		if err := dec.Decode(&rec); err != nil {
			t.Fatal(err)
		}
		if len(rec.TraceID) != 32 {
			t.Fatalf("stride %d trace id %q is not 32 hex chars", rec.Stride, rec.TraceID)
		}
	}

	// An unreachable threshold suppresses stamping even when traced.
	lg.SetTraceThreshold(time.Hour)
	jsonl.Reset()
	lg.ObserveStride(core.StrideRecord{Stride: 99, Total: time.Millisecond, TraceID: strings.Repeat("ab", 16)})
	var rec StrideLogRecord
	if err := json.NewDecoder(&jsonl).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	if rec.TraceID != "" {
		t.Fatalf("trace id %q stamped below threshold", rec.TraceID)
	}
}
