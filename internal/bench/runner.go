package bench

import (
	"fmt"
	"time"

	"disc/internal/core"
	"disc/internal/dbscan"
	"disc/internal/dbstream"
	"disc/internal/denstream"
	"disc/internal/dstream"
	"disc/internal/edmstream"
	"disc/internal/extran"
	"disc/internal/incdbscan"
	"disc/internal/metrics"
	"disc/internal/model"
	"disc/internal/rhodbscan"
	"disc/internal/trace"
	"disc/internal/window"
)

// EngineKinds lists the engine identifiers accepted by NewEngine.
func EngineKinds() []string {
	return []string{
		"disc", "disc-nomsbfs", "disc-noepoch", "disc-plain", "disc-grid", "disc-kd", "disc-par", "disc-dyncon",
		"dbscan", "incdbscan", "extran",
		"dbstream", "edmstream", "denstream", "dstream", "rho2-0.1", "rho2-0.001",
	}
}

// NewEngine constructs an engine by kind. EXTRA-N additionally needs the
// window and stride of the workload (its predicted views depend on them).
func NewEngine(kind string, cfg model.Config, win, stride int) (model.Engine, error) {
	switch kind {
	case "disc":
		return core.New(cfg), nil
	case "disc-nomsbfs":
		return core.New(cfg, core.WithMSBFS(false)), nil
	case "disc-noepoch":
		return core.New(cfg, core.WithEpochProbing(false)), nil
	case "disc-plain":
		return core.New(cfg, core.WithMSBFS(false), core.WithEpochProbing(false)), nil
	case "disc-grid":
		return core.New(cfg, core.WithGridIndex(0)), nil
	case "disc-kd":
		return core.New(cfg, core.WithKDTreeIndex()), nil
	case "disc-par":
		return core.New(cfg, core.WithWorkers(0)), nil // 0 = all available cores
	case "disc-dyncon":
		return core.New(cfg, core.WithConnectivity(core.ConnDynamic)), nil
	case "dbscan":
		return dbscan.New(cfg), nil
	case "incdbscan":
		return incdbscan.New(cfg), nil
	case "extran":
		return extran.New(cfg, win, stride)
	case "dbstream":
		return dbstream.New(cfg, dbstream.Options{})
	case "edmstream":
		return edmstream.New(cfg, edmstream.Options{})
	case "denstream":
		return denstream.New(cfg, denstream.Options{})
	case "dstream":
		return dstream.New(cfg, dstream.Options{})
	case "rho2-0.1":
		return rhodbscan.New(cfg, 0.1)
	case "rho2-0.001":
		return rhodbscan.New(cfg, 0.001)
	default:
		return nil, fmt.Errorf("bench: unknown engine kind %q (have %v)", kind, EngineKinds())
	}
}

// RunOpts bounds one engine run.
type RunOpts struct {
	// Timeout aborts the run (marking it DNF) once total Advance time
	// exceeds it; zero means no limit. The paper terminated EXTRA-N runs
	// after ten hours — this is the scaled-down equivalent.
	Timeout time.Duration
	// MemoryCap marks the run DNF when the engine's resident bookkeeping
	// (Stats().MemoryItems) exceeds it; zero means no limit. The paper's
	// EXTRA-N runs exceeded 64 GB of RAM on large windows.
	MemoryCap int64
	// Snapshot, when non-nil, is invoked after every measured stride with
	// the stride index and the engine (for ARI-style quality probes).
	Snapshot func(strideIdx int, eng model.Engine)
	// Observer, when non-nil, is attached to engines that support one (the
	// DISC variants) for the measured strides only — the bootstrap fill is
	// deliberately excluded so it cannot skew latency percentiles — and
	// detached again before Run returns.
	Observer core.Observer
	// Tracer, when non-nil, is attached alongside the observer under the
	// same bootstrap-excluded window: every measured stride records a span
	// tree, and strides beyond the tracer's slow threshold are retained in
	// its slow ring for post-run inspection.
	Tracer *trace.Tracer
}

// observable is implemented by engines whose per-stride telemetry can be
// tapped (currently the DISC core engine).
type observable interface {
	SetObserver(core.Observer)
}

// traceable is implemented by engines that can record per-stride span
// trees (currently the DISC core engine).
type traceable interface {
	SetTracer(*trace.Tracer)
}

// RunResult summarizes one engine over one windowed workload.
type RunResult struct {
	Engine      string
	Strides     int           // measured strides (bootstrap excluded)
	PerStride   time.Duration // mean Advance time per measured stride
	PerPoint    time.Duration // mean Advance time per arriving point
	Searches    float64       // mean range searches per measured stride
	TotalStats  model.Stats
	DNF         bool
	DNFReason   string
	BootstrapMS float64
}

// Run drives eng through the steps, timing every stride after the bootstrap
// fill. It returns aggregate results; on DNF the partial averages of the
// completed strides are retained.
func Run(eng model.Engine, steps []window.Step, opts RunOpts) RunResult {
	res := RunResult{Engine: eng.Name()}
	if len(steps) == 0 {
		return res
	}
	start := time.Now()
	eng.Advance(steps[0].In, steps[0].Out)
	res.BootstrapMS = float64(time.Since(start).Microseconds()) / 1000
	eng.ResetStats()
	if opts.Observer != nil {
		if ob, ok := eng.(observable); ok {
			ob.SetObserver(opts.Observer)
			defer ob.SetObserver(nil)
		}
	}
	if opts.Tracer != nil {
		if tb, ok := eng.(traceable); ok {
			tb.SetTracer(opts.Tracer)
			defer tb.SetTracer(nil)
		}
	}

	var elapsed time.Duration
	var points int
	for i, st := range steps[1:] {
		t0 := time.Now()
		eng.Advance(st.In, st.Out)
		elapsed += time.Since(t0)
		points += len(st.In)
		res.Strides++
		if opts.Snapshot != nil {
			opts.Snapshot(i, eng)
		}
		if opts.Timeout > 0 && elapsed > opts.Timeout {
			res.DNF = true
			res.DNFReason = fmt.Sprintf("timeout after %d strides (> %v)", res.Strides, opts.Timeout)
			break
		}
		if opts.MemoryCap > 0 && eng.Stats().MemoryItems > opts.MemoryCap {
			res.DNF = true
			res.DNFReason = fmt.Sprintf("memory cap exceeded: %d items > %d", eng.Stats().MemoryItems, opts.MemoryCap)
			break
		}
	}
	res.TotalStats = eng.Stats()
	if res.Strides > 0 {
		res.PerStride = elapsed / time.Duration(res.Strides)
		res.Searches = float64(res.TotalStats.RangeSearches) / float64(res.Strides)
	}
	if points > 0 {
		res.PerPoint = elapsed / time.Duration(points)
	}
	return res
}

// Quality probes clustering quality against a truth labeling: it returns the
// mean ARI over the sampled strides. truthOf must return the ground-truth
// label map restricted to the stride's window.
func Quality(eng model.Engine, steps []window.Step, sampleEvery int,
	truthOf func(strideIdx int, win []model.Point) map[int64]int) (meanARI float64, samples int) {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	eng.Advance(steps[0].In, steps[0].Out)
	var sum float64
	for i, st := range steps[1:] {
		eng.Advance(st.In, st.Out)
		if i%sampleEvery != 0 {
			continue
		}
		truth := truthOf(i, st.Window)
		if truth == nil {
			continue
		}
		pred := predLabels(eng, st.Window)
		sum += metrics.ARI(truth, pred)
		samples++
	}
	if samples == 0 {
		return 0, 0
	}
	return sum / float64(samples), samples
}

func predLabels(eng model.Engine, win []model.Point) map[int64]int {
	out := make(map[int64]int, len(win))
	for _, p := range win {
		if a, ok := eng.Assignment(p.ID); ok {
			out[p.ID] = a.ClusterID
		} else {
			out[p.ID] = model.NoCluster
		}
	}
	return out
}
