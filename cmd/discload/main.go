// Command discload is a read/write load generator for the DISC serving
// read path. One writer streams synthetic points into POST /ingest while
// -readers goroutines hammer the four GET endpoints (/clusters,
// /points/{id}, /events, /stats); at the end it reports read throughput,
// latency quantiles, and served-stride lag, and verifies that every single
// response was internally consistent — the X-Disc-Stride header matching
// the stride counters in the body. Any consistency violation makes the
// run exit nonzero, so the tool doubles as an end-to-end check that
// queries never observe a torn view while the stream advances.
//
// With no -addr, discload starts an in-process server on a loopback port
// and drives that — the zero-setup mode CI uses:
//
//	discload -duration 5s -readers 8 -window 5000 -stride 250 -batch 100
//
// Point it at a running discserver with -addr (the server must be fresh or
// its resident ids must not collide with the generator's, which are
// monotonically increasing from 0):
//
//	discload -addr http://localhost:8080 -duration 30s -readers 16
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"disc/internal/model"
	"disc/internal/server"
	"disc/internal/trace"
)

type config struct {
	addr     string
	dims     int
	eps      float64
	minPts   int
	window   int
	stride   int
	readers  int
	duration time.Duration
	batch    int
	slowest  int
}

// endpointKinds names the request kinds latencies are bucketed by: the
// four GET endpoints plus the ingest POST.
var endpointKinds = []string{"clusters", "points", "events", "stats", "ingest"}

// slowReq remembers one slow ingest POST and the traceparent it was sent
// with, so its recorded span tree can be looked up at GET /debug/traces.
type slowReq struct {
	dur     time.Duration
	traceID string
}

// results aggregates one run. Violations counts responses whose stride
// header disagreed with the body's counters — it must be zero.
type results struct {
	reads      uint64
	readErrors uint64
	violations uint64
	writes     uint64
	strides    uint64
	maxLag     uint64
	latencies  []time.Duration            // merged reads, sorted ascending
	perKind    map[string][]time.Duration // per-endpoint, sorted ascending
	slowest    []slowReq                  // N slowest ingest POSTs, slowest first
	elapsed    time.Duration
}

func main() {
	cfg := config{}
	fs := flag.NewFlagSet("discload", flag.ExitOnError)
	bindFlags(fs, &cfg)
	fs.Parse(os.Args[1:])

	res, err := run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "discload: %v\n", err)
		os.Exit(1)
	}
	report(os.Stdout, cfg, res)
	if res.violations > 0 || res.readErrors > 0 {
		os.Exit(1)
	}
}

func bindFlags(fs *flag.FlagSet, cfg *config) {
	fs.StringVar(&cfg.addr, "addr", "", "base URL of a running discserver (empty = start one in-process)")
	fs.IntVar(&cfg.dims, "dims", 2, "coordinates per point (in-process server only)")
	fs.Float64Var(&cfg.eps, "eps", 2.0, "distance threshold ε (in-process server only)")
	fs.IntVar(&cfg.minPts, "minpts", 4, "density threshold τ (in-process server only)")
	fs.IntVar(&cfg.window, "window", 5000, "sliding window size in points (in-process server only)")
	fs.IntVar(&cfg.stride, "stride", 250, "stride size in points (in-process server only)")
	fs.IntVar(&cfg.readers, "readers", 8, "concurrent query goroutines")
	fs.DurationVar(&cfg.duration, "duration", 10*time.Second, "how long to run")
	fs.IntVar(&cfg.batch, "batch", 100, "points per ingest POST")
	fs.IntVar(&cfg.slowest, "slowest", 5, "ingest requests to report trace ids for (slowest first)")
}

// run executes one load-generation session and returns the aggregated
// results. Factored out of main so tests can drive it directly.
func run(cfg config) (*results, error) {
	base := cfg.addr
	if base == "" {
		srv, err := server.New(server.Config{
			Cluster: model.Config{Dims: cfg.dims, Eps: cfg.eps, MinPts: cfg.minPts},
			Window:  cfg.window,
			Stride:  cfg.stride,
			// Record ingest traces so the trace ids this run reports are
			// resolvable at /debug/traces in the zero-setup mode too.
			Tracing: &server.TraceConfig{SlowThreshold: 250 * time.Millisecond},
		})
		if err != nil {
			return nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		defer hs.Close()
		base = "http://" + ln.Addr().String()
	}

	client := &http.Client{
		Timeout: 10 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.readers + 4,
			MaxIdleConnsPerHost: cfg.readers + 4,
		},
	}

	var (
		res        results
		latestID   atomic.Int64  // upper bound of ingested ids, for /points probes
		strides    atomic.Uint64 // newest stride the writer has observed
		maxLag     atomic.Uint64
		stop       = make(chan struct{})
		wg         sync.WaitGroup
		latMu      sync.Mutex
		latMerged  []time.Duration
		kindMerged = map[string][]time.Duration{}
	)

	// Writer: monotonic ids, two Gaussian blobs — the same synthetic shape
	// the server tests cluster on, so the census stays non-trivial. Every
	// POST carries a fresh W3C traceparent; the N slowest requests are
	// reported with their trace ids so their recorded span trees can be
	// pulled from GET /debug/traces after the run.
	wg.Add(1)
	writerErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(time.Now().UnixNano()))
		id := int64(0)
		ingestLat := make([]time.Duration, 0, 4096)
		var slow []slowReq
		defer func() {
			latMu.Lock()
			kindMerged["ingest"] = append(kindMerged["ingest"], ingestLat...)
			res.slowest = slow
			latMu.Unlock()
		}()
		for {
			select {
			case <-stop:
				return
			default:
			}
			batch := make([]ingestPoint, cfg.batch)
			for i := range batch {
				c := float64(rng.Intn(2)) * 20
				batch[i] = ingestPoint{
					ID:     id,
					Time:   id,
					Coords: []float64{c + rng.NormFloat64(), c + rng.NormFloat64()},
				}
				id++
			}
			body, _ := json.Marshal(batch)
			ctx := trace.SpanContext{TraceID: trace.NewTraceID(), SpanID: 1}
			req, err := http.NewRequest(http.MethodPost, base+"/ingest", bytes.NewReader(body))
			if err != nil {
				select {
				case writerErr <- fmt.Errorf("ingest: %w", err):
				default:
				}
				return
			}
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set("traceparent", trace.FormatTraceparent(ctx))
			start := time.Now()
			resp, err := client.Do(req)
			dur := time.Since(start)
			ingestLat = append(ingestLat, dur)
			slow = insertSlow(slow, slowReq{dur: dur, traceID: ctx.TraceID.String()}, cfg.slowest)
			if err != nil {
				select {
				case writerErr <- fmt.Errorf("ingest: %w", err):
				default:
				}
				return
			}
			var ir struct {
				Strides uint64 `json:"strides"`
			}
			json.NewDecoder(resp.Body).Decode(&ir)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				select {
				case writerErr <- fmt.Errorf("ingest status %d", resp.StatusCode):
				default:
				}
				return
			}
			strides.Store(ir.Strides)
			latestID.Store(id)
			atomic.AddUint64(&res.writes, uint64(cfg.batch))
		}
	}()

	for r := 0; r < cfg.readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			lat := make([]time.Duration, 0, 4096)
			var kindLat [4][]time.Duration
			for {
				select {
				case <-stop:
					latMu.Lock()
					latMerged = append(latMerged, lat...)
					for k := range kindLat {
						kindMerged[endpointKinds[k]] = append(kindMerged[endpointKinds[k]], kindLat[k]...)
					}
					latMu.Unlock()
					return
				default:
				}
				start := time.Now()
				ok, served, kind := doRead(client, base, rng, latestID.Load(), &res)
				d := time.Since(start)
				lat = append(lat, d)
				kindLat[kind] = append(kindLat[kind], d)
				if ok {
					if newest := strides.Load(); newest > served {
						lag := newest - served
						for {
							cur := maxLag.Load()
							if lag <= cur || maxLag.CompareAndSwap(cur, lag) {
								break
							}
						}
					}
				}
			}
		}(int64(r) + 1)
	}

	startAll := time.Now()
	var werr error
	select {
	case <-time.After(cfg.duration):
	case werr = <-writerErr:
	}
	close(stop)
	wg.Wait()
	res.elapsed = time.Since(startAll)
	if werr != nil {
		return nil, werr
	}
	res.strides = strides.Load()
	res.maxLag = maxLag.Load()
	sort.Slice(latMerged, func(i, j int) bool { return latMerged[i] < latMerged[j] })
	res.latencies = latMerged
	for _, lats := range kindMerged {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	}
	res.perKind = kindMerged
	return &res, nil
}

// insertSlow keeps the n slowest requests, slowest first.
func insertSlow(slow []slowReq, r slowReq, n int) []slowReq {
	if n <= 0 {
		return slow
	}
	i := sort.Search(len(slow), func(i int) bool { return slow[i].dur < r.dur })
	slow = append(slow, slowReq{})
	copy(slow[i+1:], slow[i:])
	slow[i] = r
	if len(slow) > n {
		slow = slow[:n]
	}
	return slow
}

// doRead issues one randomly chosen GET and checks its internal
// consistency. It returns whether the read succeeded, the stride the
// response was served at (0 when the endpoint carries no stride header),
// and the endpoint kind (an index into endpointKinds).
func doRead(client *http.Client, base string, rng *rand.Rand, maxID int64, res *results) (bool, uint64, int) {
	var url string
	kind := rng.Intn(4)
	switch kind {
	case 0:
		url = base + "/clusters"
	case 1:
		if maxID == 0 {
			url = base + "/points/0"
		} else {
			url = base + "/points/" + strconv.FormatInt(rng.Int63n(maxID), 10)
		}
	case 2:
		url = base + "/events"
	case 3:
		url = base + "/stats"
	}
	resp, err := client.Get(url)
	if err != nil {
		atomic.AddUint64(&res.readErrors, 1)
		return false, 0, kind
	}
	defer resp.Body.Close()
	atomic.AddUint64(&res.reads, 1)
	served, _ := strconv.ParseUint(resp.Header.Get("X-Disc-Stride"), 10, 64)

	switch kind {
	case 0:
		var cr struct {
			Strides  uint64 `json:"strides"`
			Window   int    `json:"window"`
			Noise    int    `json:"noise"`
			Clusters []struct {
				Size int `json:"size"`
			} `json:"clusters"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil || resp.StatusCode != http.StatusOK {
			atomic.AddUint64(&res.readErrors, 1)
			return false, served, kind
		}
		total := cr.Noise
		for _, c := range cr.Clusters {
			total += c.Size
		}
		if cr.Strides != served || total != cr.Window {
			atomic.AddUint64(&res.violations, 1)
		}
	case 3:
		var sr struct {
			Stats struct {
				Strides uint64 `json:"strides"`
			} `json:"stats"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil || resp.StatusCode != http.StatusOK {
			atomic.AddUint64(&res.readErrors, 1)
			return false, served, kind
		}
		if sr.Stats.Strides != served {
			atomic.AddUint64(&res.violations, 1)
		}
	default:
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusOK && !(kind == 1 && resp.StatusCode == http.StatusNotFound) {
			atomic.AddUint64(&res.readErrors, 1)
			return false, served, kind
		}
	}
	return true, served, kind
}

// ingestPoint mirrors the server's wire form.
type ingestPoint struct {
	ID     int64     `json:"id"`
	Time   int64     `json:"time"`
	Coords []float64 `json:"coords"`
}

func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func report(w io.Writer, cfg config, res *results) {
	secs := res.elapsed.Seconds()
	fmt.Fprintf(w, "discload: %d reads (%.0f/s), %d writes (%.0f/s), %d strides over %v\n",
		res.reads, float64(res.reads)/secs, res.writes, float64(res.writes)/secs, res.strides, res.elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "discload: read latency p50=%v p95=%v p99=%v max=%v\n",
		quantile(res.latencies, 0.50).Round(time.Microsecond),
		quantile(res.latencies, 0.95).Round(time.Microsecond),
		quantile(res.latencies, 0.99).Round(time.Microsecond),
		quantile(res.latencies, 1.0).Round(time.Microsecond))
	for _, kind := range endpointKinds {
		lats := res.perKind[kind]
		if len(lats) == 0 {
			continue
		}
		fmt.Fprintf(w, "discload:   %-8s n=%-7d p50=%v p95=%v p99=%v max=%v\n",
			kind, len(lats),
			quantile(lats, 0.50).Round(time.Microsecond),
			quantile(lats, 0.95).Round(time.Microsecond),
			quantile(lats, 0.99).Round(time.Microsecond),
			quantile(lats, 1.0).Round(time.Microsecond))
	}
	if len(res.slowest) > 0 {
		fmt.Fprintln(w, "discload: slowest ingest requests (GET /debug/traces?trace=<id>):")
		for _, s := range res.slowest {
			fmt.Fprintf(w, "discload:   %-12v trace=%s\n", s.dur.Round(time.Microsecond), s.traceID)
		}
	}
	fmt.Fprintf(w, "discload: max served-stride lag %d, consistency violations %d, read errors %d\n",
		res.maxLag, res.violations, res.readErrors)
	if res.violations > 0 {
		fmt.Fprintln(w, "discload: FAIL — responses disagreed with their stride header")
	} else if res.readErrors > 0 {
		fmt.Fprintln(w, "discload: FAIL — read errors")
	} else {
		fmt.Fprintln(w, "discload: OK")
	}
}
