// Command discload is a read/write load generator for the DISC serving
// read path. One writer per stream pours synthetic points into POST
// /ingest while -readers goroutines hammer the four GET endpoints
// (/clusters, /points/{id}, /events, /stats); at the end it reports read
// throughput, latency quantiles, and served-stride lag, and verifies that
// every single response was internally consistent — the X-Disc-Stride
// header matching the stride counters in the body. Any consistency
// violation makes the run exit nonzero, so the tool doubles as an
// end-to-end check that queries never observe a torn view while the
// stream advances.
//
// With -streams N (N > 1) the run drives N independent tenants through the
// multi-tenant /streams API concurrently — each stream gets its own writer
// over a disjoint id space, readers verify per-stream consistency, and a
// fraction of point probes deliberately ask one stream for another
// stream's ids: any non-404 answer is cross-stream view bleed and fails
// the run.
//
// With -failover the tool runs a kill-and-failover soak instead (see
// failover.go): sequenced batches with duplicate re-deliveries into a
// WAL-backed leader, a mid-run crash with a torn log tail, follower
// catch-up and promotion, and a byte-level comparison of the survivor
// against an uninterrupted reference server.
//
// With no -addr, discload starts an in-process server on a loopback port
// and drives that — the zero-setup mode CI uses:
//
//	discload -duration 5s -readers 8 -window 5000 -stride 250 -batch 100
//	discload -duration 5s -readers 8 -streams 8
//
// Point it at a running discserver with -addr (the server must be fresh or
// its resident ids must not collide with the generator's):
//
//	discload -addr http://localhost:8080 -duration 30s -readers 16
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"disc/internal/model"
	"disc/internal/server"
	"disc/internal/trace"
)

type config struct {
	addr     string
	dims     int
	eps      float64
	minPts   int
	window   int
	stride   int
	readers  int
	duration time.Duration
	batch    int
	slowest  int
	streams  int
	failover bool
	batches  int
	killat   int
	dupes    int
}

// endpointKinds names the request kinds latencies are bucketed by: the
// four GET endpoints plus the ingest POST.
var endpointKinds = []string{"clusters", "points", "events", "stats", "ingest"}

// tenant is one driven stream: its routing prefix, its disjoint id space,
// and the live counters its readers validate against.
type tenant struct {
	name     string
	prefix   string // "" = legacy single-stream routes
	idBase   int64
	latestID atomic.Int64  // upper bound of ingested ids, for /points probes
	strides  atomic.Uint64 // newest stride this tenant's writer has observed
}

// slowReq remembers one slow ingest POST and the traceparent it was sent
// with, so its recorded span tree can be looked up at GET /debug/traces.
type slowReq struct {
	dur     time.Duration
	traceID string
}

// results aggregates one run. Violations counts responses whose stride
// header disagreed with the body's counters; bleeds counts foreign-stream
// probes that did not 404. Both must be zero.
type results struct {
	reads      uint64
	readErrors uint64
	violations uint64
	bleeds     uint64
	writes     uint64
	strides    uint64
	maxLag     uint64
	latencies  []time.Duration            // merged reads, sorted ascending
	perKind    map[string][]time.Duration // per-endpoint, sorted ascending
	slowest    []slowReq                  // N slowest ingest POSTs, slowest first
	elapsed    time.Duration
}

func main() {
	cfg := config{}
	fs := flag.NewFlagSet("discload", flag.ExitOnError)
	bindFlags(fs, &cfg)
	fs.Parse(os.Args[1:])

	if cfg.failover {
		if err := runFailover(cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "discload: %v\n", err)
			os.Exit(1)
		}
		return
	}
	res, err := run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "discload: %v\n", err)
		os.Exit(1)
	}
	report(os.Stdout, cfg, res)
	if res.violations > 0 || res.bleeds > 0 || res.readErrors > 0 {
		os.Exit(1)
	}
}

func bindFlags(fs *flag.FlagSet, cfg *config) {
	fs.StringVar(&cfg.addr, "addr", "", "base URL of a running discserver (empty = start one in-process)")
	fs.IntVar(&cfg.dims, "dims", 2, "coordinates per point (in-process server only)")
	fs.Float64Var(&cfg.eps, "eps", 2.0, "distance threshold ε (in-process server only)")
	fs.IntVar(&cfg.minPts, "minpts", 4, "density threshold τ (in-process server only)")
	fs.IntVar(&cfg.window, "window", 5000, "sliding window size in points (in-process server only)")
	fs.IntVar(&cfg.stride, "stride", 250, "stride size in points (in-process server only)")
	fs.IntVar(&cfg.readers, "readers", 8, "concurrent query goroutines")
	fs.DurationVar(&cfg.duration, "duration", 10*time.Second, "how long to run")
	fs.IntVar(&cfg.batch, "batch", 100, "points per ingest POST")
	fs.IntVar(&cfg.slowest, "slowest", 5, "ingest requests to report trace ids for (slowest first)")
	fs.IntVar(&cfg.streams, "streams", 1, "independent tenant streams to drive concurrently (>1 uses the /streams API)")
	fs.BoolVar(&cfg.failover, "failover", false, "run the kill-and-failover soak instead of the load run (in-process leader+WAL, follower promotion, exactly-once checks)")
	fs.IntVar(&cfg.batches, "batches", 40, "failover soak: total sequenced batches to deliver")
	fs.IntVar(&cfg.killat, "killat", 0, "failover soak: batch index after which the leader is killed (0 = halfway)")
	fs.IntVar(&cfg.dupes, "dupes", 6, "failover soak: duplicate re-deliveries to inject (each must dedup, not re-apply)")
}

// run executes one load-generation session and returns the aggregated
// results. Factored out of main so tests can drive it directly.
func run(cfg config) (*results, error) {
	if cfg.streams < 1 {
		cfg.streams = 1
	}
	base := cfg.addr
	if base == "" {
		serverCfg := server.Config{
			Cluster: model.Config{Dims: cfg.dims, Eps: cfg.eps, MinPts: cfg.minPts},
			Window:  cfg.window,
			Stride:  cfg.stride,
			// Record ingest traces so the trace ids this run reports are
			// resolvable at /debug/traces in the zero-setup mode too.
			Tracing: &server.TraceConfig{SlowThreshold: 250 * time.Millisecond},
		}
		var handler http.Handler
		if cfg.streams > 1 {
			m, err := server.NewMulti(server.MultiConfig{Default: serverCfg})
			if err != nil {
				return nil, err
			}
			handler = m.Handler()
		} else {
			srv, err := server.New(serverCfg)
			if err != nil {
				return nil, err
			}
			handler = srv.Handler()
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		hs := &http.Server{Handler: handler}
		go hs.Serve(ln)
		defer hs.Close()
		base = "http://" + ln.Addr().String()
	}

	client := &http.Client{
		Timeout: 10 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.readers + cfg.streams + 4,
			MaxIdleConnsPerHost: cfg.readers + cfg.streams + 4,
		},
	}

	// One tenant per stream over disjoint id spaces. The single-stream mode
	// keeps the legacy unprefixed routes, so discload still works against a
	// pre-multi-tenant server.
	tenants := make([]*tenant, cfg.streams)
	if cfg.streams == 1 {
		tenants[0] = &tenant{name: "default"}
	} else {
		for i := range tenants {
			t := &tenant{
				name:   fmt.Sprintf("load-%d", i),
				idBase: int64(i) * 1_000_000_000,
			}
			t.prefix = "/streams/" + t.name
			t.latestID.Store(t.idBase)
			if err := createStream(client, base, t.name); err != nil {
				return nil, err
			}
			tenants[i] = t
		}
	}

	var (
		res        results
		maxLag     atomic.Uint64
		stop       = make(chan struct{})
		wg         sync.WaitGroup
		latMu      sync.Mutex
		latMerged  []time.Duration
		kindMerged = map[string][]time.Duration{}
	)

	// Writers: one per tenant — monotonic ids from the tenant's own base,
	// two Gaussian blobs (the same synthetic shape the server tests cluster
	// on, so the census stays non-trivial). Every POST carries a fresh W3C
	// traceparent; the N slowest requests across all writers are reported
	// with their trace ids so their recorded span trees can be pulled from
	// GET /debug/traces after the run.
	writerErr := make(chan error, len(tenants))
	for ti, t := range tenants {
		wg.Add(1)
		go func(seed int64, t *tenant) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			id := t.idBase
			ingestLat := make([]time.Duration, 0, 4096)
			var slow []slowReq
			defer func() {
				latMu.Lock()
				kindMerged["ingest"] = append(kindMerged["ingest"], ingestLat...)
				for _, s := range slow {
					res.slowest = insertSlow(res.slowest, s, cfg.slowest)
				}
				latMu.Unlock()
			}()
			fail := func(err error) {
				select {
				case writerErr <- fmt.Errorf("stream %s: %w", t.name, err):
				default:
				}
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				batch := make([]ingestPoint, cfg.batch)
				for i := range batch {
					c := float64(rng.Intn(2)) * 20
					batch[i] = ingestPoint{
						ID:     id,
						Time:   id,
						Coords: []float64{c + rng.NormFloat64(), c + rng.NormFloat64()},
					}
					id++
				}
				body, _ := json.Marshal(batch)
				ctx := trace.SpanContext{TraceID: trace.NewTraceID(), SpanID: 1}
				req, err := http.NewRequest(http.MethodPost, base+t.prefix+"/ingest", bytes.NewReader(body))
				if err != nil {
					fail(fmt.Errorf("ingest: %w", err))
					return
				}
				req.Header.Set("Content-Type", "application/json")
				req.Header.Set("traceparent", trace.FormatTraceparent(ctx))
				start := time.Now()
				resp, err := client.Do(req)
				dur := time.Since(start)
				ingestLat = append(ingestLat, dur)
				slow = insertSlow(slow, slowReq{dur: dur, traceID: ctx.TraceID.String()}, cfg.slowest)
				if err != nil {
					fail(fmt.Errorf("ingest: %w", err))
					return
				}
				var ir struct {
					Strides uint64 `json:"strides"`
				}
				json.NewDecoder(resp.Body).Decode(&ir)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					fail(fmt.Errorf("ingest status %d", resp.StatusCode))
					return
				}
				t.strides.Store(ir.Strides)
				t.latestID.Store(id)
				atomic.AddUint64(&res.writes, uint64(cfg.batch))
			}
		}(int64(ti)+1001, t)
	}

	for r := 0; r < cfg.readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			lat := make([]time.Duration, 0, 4096)
			var kindLat [4][]time.Duration
			for {
				select {
				case <-stop:
					latMu.Lock()
					latMerged = append(latMerged, lat...)
					for k := range kindLat {
						kindMerged[endpointKinds[k]] = append(kindMerged[endpointKinds[k]], kindLat[k]...)
					}
					latMu.Unlock()
					return
				default:
				}
				ti := rng.Intn(len(tenants))
				t := tenants[ti]
				var foreign *tenant
				if len(tenants) > 1 {
					foreign = tenants[(ti+1+rng.Intn(len(tenants)-1))%len(tenants)]
				}
				start := time.Now()
				ok, served, kind := doRead(client, base, rng, t, foreign, &res)
				d := time.Since(start)
				lat = append(lat, d)
				kindLat[kind] = append(kindLat[kind], d)
				if ok {
					if newest := t.strides.Load(); newest > served {
						lag := newest - served
						for {
							cur := maxLag.Load()
							if lag <= cur || maxLag.CompareAndSwap(cur, lag) {
								break
							}
						}
					}
				}
			}
		}(int64(r) + 1)
	}

	startAll := time.Now()
	var werr error
	select {
	case <-time.After(cfg.duration):
	case werr = <-writerErr:
	}
	close(stop)
	wg.Wait()
	res.elapsed = time.Since(startAll)
	if werr != nil {
		return nil, werr
	}
	for _, t := range tenants {
		res.strides += t.strides.Load()
	}
	res.maxLag = maxLag.Load()
	sort.Slice(latMerged, func(i, j int) bool { return latMerged[i] < latMerged[j] })
	res.latencies = latMerged
	for _, lats := range kindMerged {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	}
	res.perKind = kindMerged
	return &res, nil
}

// createStream registers one tenant via POST /streams; an already-existing
// stream (409) is fine — the run just continues its id space.
func createStream(client *http.Client, base, name string) error {
	body, _ := json.Marshal(map[string]string{"name": name})
	resp, err := client.Post(base+"/streams", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("creating stream %s: %w", name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusConflict {
		msg, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("creating stream %s: status %d: %s", name, resp.StatusCode, msg)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// insertSlow keeps the n slowest requests, slowest first.
func insertSlow(slow []slowReq, r slowReq, n int) []slowReq {
	if n <= 0 {
		return slow
	}
	i := sort.Search(len(slow), func(i int) bool { return slow[i].dur < r.dur })
	slow = append(slow, slowReq{})
	copy(slow[i+1:], slow[i:])
	slow[i] = r
	if len(slow) > n {
		slow = slow[:n]
	}
	return slow
}

// doRead issues one randomly chosen GET against tenant t and checks its
// internal consistency. When foreign is non-nil, a fraction of the point
// probes instead ask t for an id belonging to foreign's id space — the
// cross-stream bleed check: t never ingested that id, so anything but 404
// means one stream's view leaked into another. It returns whether the read
// succeeded, the stride the response was served at, and the endpoint kind
// (an index into endpointKinds).
func doRead(client *http.Client, base string, rng *rand.Rand, t, foreign *tenant, res *results) (bool, uint64, int) {
	var url string
	bleedProbe := false
	kind := rng.Intn(4)
	switch kind {
	case 0:
		url = base + t.prefix + "/clusters"
	case 1:
		if foreign != nil && rng.Intn(4) == 0 {
			if span := foreign.latestID.Load() - foreign.idBase; span > 0 {
				bleedProbe = true
				id := foreign.idBase + rng.Int63n(span)
				url = base + t.prefix + "/points/" + strconv.FormatInt(id, 10)
			}
		}
		if !bleedProbe {
			span := t.latestID.Load() - t.idBase
			if span == 0 {
				url = base + t.prefix + "/points/" + strconv.FormatInt(t.idBase, 10)
			} else {
				url = base + t.prefix + "/points/" + strconv.FormatInt(t.idBase+rng.Int63n(span), 10)
			}
		}
	case 2:
		url = base + t.prefix + "/events"
	case 3:
		url = base + t.prefix + "/stats"
	}
	resp, err := client.Get(url)
	if err != nil {
		atomic.AddUint64(&res.readErrors, 1)
		return false, 0, kind
	}
	defer resp.Body.Close()
	atomic.AddUint64(&res.reads, 1)
	served, _ := strconv.ParseUint(resp.Header.Get("X-Disc-Stride"), 10, 64)

	if bleedProbe {
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusNotFound {
			atomic.AddUint64(&res.bleeds, 1)
			return false, served, kind
		}
		return true, served, kind
	}

	switch kind {
	case 0:
		var cr struct {
			Strides  uint64 `json:"strides"`
			Window   int    `json:"window"`
			Noise    int    `json:"noise"`
			Clusters []struct {
				Size int `json:"size"`
			} `json:"clusters"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil || resp.StatusCode != http.StatusOK {
			atomic.AddUint64(&res.readErrors, 1)
			return false, served, kind
		}
		total := cr.Noise
		for _, c := range cr.Clusters {
			total += c.Size
		}
		if cr.Strides != served || total != cr.Window {
			atomic.AddUint64(&res.violations, 1)
		}
	case 3:
		var sr struct {
			Stats struct {
				Strides uint64 `json:"strides"`
			} `json:"stats"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil || resp.StatusCode != http.StatusOK {
			atomic.AddUint64(&res.readErrors, 1)
			return false, served, kind
		}
		if sr.Stats.Strides != served {
			atomic.AddUint64(&res.violations, 1)
		}
	default:
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusOK && !(kind == 1 && resp.StatusCode == http.StatusNotFound) {
			atomic.AddUint64(&res.readErrors, 1)
			return false, served, kind
		}
	}
	return true, served, kind
}

// ingestPoint mirrors the server's wire form.
type ingestPoint struct {
	ID     int64     `json:"id"`
	Time   int64     `json:"time"`
	Coords []float64 `json:"coords"`
}

func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func report(w io.Writer, cfg config, res *results) {
	secs := res.elapsed.Seconds()
	fmt.Fprintf(w, "discload: %d streams, %d reads (%.0f/s), %d writes (%.0f/s), %d strides over %v\n",
		cfg.streams, res.reads, float64(res.reads)/secs, res.writes, float64(res.writes)/secs,
		res.strides, res.elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "discload: read latency p50=%v p95=%v p99=%v max=%v\n",
		quantile(res.latencies, 0.50).Round(time.Microsecond),
		quantile(res.latencies, 0.95).Round(time.Microsecond),
		quantile(res.latencies, 0.99).Round(time.Microsecond),
		quantile(res.latencies, 1.0).Round(time.Microsecond))
	for _, kind := range endpointKinds {
		lats := res.perKind[kind]
		if len(lats) == 0 {
			continue
		}
		fmt.Fprintf(w, "discload:   %-8s n=%-7d p50=%v p95=%v p99=%v max=%v\n",
			kind, len(lats),
			quantile(lats, 0.50).Round(time.Microsecond),
			quantile(lats, 0.95).Round(time.Microsecond),
			quantile(lats, 0.99).Round(time.Microsecond),
			quantile(lats, 1.0).Round(time.Microsecond))
	}
	if len(res.slowest) > 0 {
		fmt.Fprintln(w, "discload: slowest ingest requests (GET /debug/traces?trace=<id>):")
		for _, s := range res.slowest {
			fmt.Fprintf(w, "discload:   %-12v trace=%s\n", s.dur.Round(time.Microsecond), s.traceID)
		}
	}
	fmt.Fprintf(w, "discload: max served-stride lag %d, consistency violations %d, cross-stream bleeds %d, read errors %d\n",
		res.maxLag, res.violations, res.bleeds, res.readErrors)
	switch {
	case res.violations > 0:
		fmt.Fprintln(w, "discload: FAIL — responses disagreed with their stride header")
	case res.bleeds > 0:
		fmt.Fprintln(w, "discload: FAIL — one stream's points were visible in another stream")
	case res.readErrors > 0:
		fmt.Fprintln(w, "discload: FAIL — read errors")
	default:
		fmt.Fprintln(w, "discload: OK")
	}
}
