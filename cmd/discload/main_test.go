package main

import (
	"strings"
	"testing"
	"time"
)

// TestRunSmoke drives a short in-process session: reads must flow, strides
// must advance, and no response may contradict its stride header.
func TestRunSmoke(t *testing.T) {
	res, err := run(config{
		dims: 2, eps: 2, minPts: 4,
		window: 1000, stride: 100,
		readers: 4, duration: 1500 * time.Millisecond, batch: 50,
		slowest: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.reads == 0 {
		t.Fatal("no reads completed")
	}
	if len(res.perKind["ingest"]) == 0 {
		t.Fatal("no per-endpoint ingest latencies recorded")
	}
	if len(res.slowest) == 0 || len(res.slowest) > 3 {
		t.Fatalf("slowest tracking returned %d entries, want 1..3", len(res.slowest))
	}
	for i, s := range res.slowest {
		if len(s.traceID) != 32 {
			t.Fatalf("slowest[%d] trace id %q is not 32 hex chars", i, s.traceID)
		}
		if i > 0 && s.dur > res.slowest[i-1].dur {
			t.Fatalf("slowest not ordered: %v after %v", s.dur, res.slowest[i-1].dur)
		}
	}
	if res.writes == 0 || res.strides == 0 {
		t.Fatalf("writer made no progress: writes=%d strides=%d", res.writes, res.strides)
	}
	if res.violations != 0 {
		t.Fatalf("%d consistency violations", res.violations)
	}
	if res.readErrors != 0 {
		t.Fatalf("%d read errors", res.readErrors)
	}
	var b strings.Builder
	report(&b, config{}, res)
	if !strings.Contains(b.String(), "discload: OK") {
		t.Fatalf("report did not conclude OK:\n%s", b.String())
	}
}
