package main

import (
	"strings"
	"testing"
	"time"
)

// TestRunSmoke drives a short in-process session: reads must flow, strides
// must advance, and no response may contradict its stride header.
func TestRunSmoke(t *testing.T) {
	res, err := run(config{
		dims: 2, eps: 2, minPts: 4,
		window: 1000, stride: 100,
		readers: 4, duration: 1500 * time.Millisecond, batch: 50,
		slowest: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.reads == 0 {
		t.Fatal("no reads completed")
	}
	if len(res.perKind["ingest"]) == 0 {
		t.Fatal("no per-endpoint ingest latencies recorded")
	}
	if len(res.slowest) == 0 || len(res.slowest) > 3 {
		t.Fatalf("slowest tracking returned %d entries, want 1..3", len(res.slowest))
	}
	for i, s := range res.slowest {
		if len(s.traceID) != 32 {
			t.Fatalf("slowest[%d] trace id %q is not 32 hex chars", i, s.traceID)
		}
		if i > 0 && s.dur > res.slowest[i-1].dur {
			t.Fatalf("slowest not ordered: %v after %v", s.dur, res.slowest[i-1].dur)
		}
	}
	if res.writes == 0 || res.strides == 0 {
		t.Fatalf("writer made no progress: writes=%d strides=%d", res.writes, res.strides)
	}
	if res.violations != 0 {
		t.Fatalf("%d consistency violations", res.violations)
	}
	if res.readErrors != 0 {
		t.Fatalf("%d read errors", res.readErrors)
	}
	var b strings.Builder
	report(&b, config{}, res)
	if !strings.Contains(b.String(), "discload: OK") {
		t.Fatalf("report did not conclude OK:\n%s", b.String())
	}
}

// TestRunMultiStream drives several tenants concurrently through the
// /streams API: every tenant's writer must make progress, per-stream
// consistency must hold, and no cross-stream bleed probe may resolve —
// the end-to-end form of the registry's isolation guarantee.
func TestRunMultiStream(t *testing.T) {
	res, err := run(config{
		dims: 2, eps: 2, minPts: 4,
		window: 1000, stride: 100,
		readers: 6, duration: 1500 * time.Millisecond, batch: 50,
		slowest: 3, streams: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.reads == 0 || res.writes == 0 {
		t.Fatalf("no progress: reads=%d writes=%d", res.reads, res.writes)
	}
	// Total strides across 4 tenants: each must have advanced at least once
	// for the sum to reach 4 in this workload.
	if res.strides < 4 {
		t.Fatalf("total strides %d across 4 streams — some tenant stalled", res.strides)
	}
	if res.violations != 0 {
		t.Fatalf("%d consistency violations", res.violations)
	}
	if res.bleeds != 0 {
		t.Fatalf("%d cross-stream bleeds", res.bleeds)
	}
	if res.readErrors != 0 {
		t.Fatalf("%d read errors", res.readErrors)
	}
}
