package main

import (
	"strings"
	"testing"
	"time"
)

// TestRunSmoke drives a short in-process session: reads must flow, strides
// must advance, and no response may contradict its stride header.
func TestRunSmoke(t *testing.T) {
	res, err := run(config{
		dims: 2, eps: 2, minPts: 4,
		window: 1000, stride: 100,
		readers: 4, duration: 1500 * time.Millisecond, batch: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.reads == 0 {
		t.Fatal("no reads completed")
	}
	if res.writes == 0 || res.strides == 0 {
		t.Fatalf("writer made no progress: writes=%d strides=%d", res.writes, res.strides)
	}
	if res.violations != 0 {
		t.Fatalf("%d consistency violations", res.violations)
	}
	if res.readErrors != 0 {
		t.Fatalf("%d read errors", res.readErrors)
	}
	var b strings.Builder
	report(&b, config{}, res)
	if !strings.Contains(b.String(), "discload: OK") {
		t.Fatalf("report did not conclude OK:\n%s", b.String())
	}
}
