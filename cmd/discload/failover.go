// Kill-and-failover soak (-failover): instead of a timed read/write load
// run, discload drives a fixed script that exercises the exactly-once
// ingest pipeline end to end. It starts an in-process leader with a
// write-ahead log, a reference server with none, and delivers the same
// sequence-numbered batches to both — randomly re-delivering already
// acknowledged batches and requiring each retry to come back deduplicated
// with its original body, byte for byte. Midway it abandons the leader
// without any shutdown, appends a torn frame to the log tail (the shape a
// mid-append crash leaves), tails the log with a follower, promotes it,
// retries the last pre-crash batches against the new leader (they must
// dedup — the promoted follower rebuilt the dedup window from the log),
// finishes the script, and byte-compares the survivor's /checkpoint,
// /stats, /clusters, and /events bodies against the reference. Any
// divergence, lost batch, or double-applied batch fails the run.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"disc/internal/model"
	"disc/internal/server"
)

// soakClient is the X-Disc-Client identity all sequenced batches are sent
// under; sequence numbers are 1-based batch indices.
const soakClient = "discload-failover"

// runFailover executes the soak script. It returns an error on the first
// broken guarantee; a nil return means every check held.
func runFailover(cfg config, out io.Writer) error {
	if cfg.batches < 4 {
		return fmt.Errorf("failover: -batches must be at least 4, got %d", cfg.batches)
	}
	killat := cfg.killat
	if killat < 2 || killat >= cfg.batches {
		killat = cfg.batches / 2
	}
	walDir, err := os.MkdirTemp("", "discload-wal-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(walDir)

	serverCfg := server.Config{
		Cluster: model.Config{Dims: cfg.dims, Eps: cfg.eps, MinPts: cfg.minPts},
		Window:  cfg.window,
		Stride:  cfg.stride,
	}

	// The leader is wired the way discserver wires it: the stream registry
	// opens the write-ahead log for the default stream and fsyncs every
	// batch before acknowledging it.
	leader, err := server.NewMulti(server.MultiConfig{Default: serverCfg, WALDir: walDir})
	if err != nil {
		return fmt.Errorf("failover: leader: %w", err)
	}
	leaderBase, leaderHS, err := serveLoopback(leader.Handler())
	if err != nil {
		return fmt.Errorf("failover: leader: %w", err)
	}
	defer leaderHS.Close()

	// The reference ingests the same script over plain HTTP with no log and
	// no crash — the oracle the promoted follower must match byte for byte.
	ref, err := server.New(serverCfg)
	if err != nil {
		return fmt.Errorf("failover: reference: %w", err)
	}
	refBase, refHS, err := serveLoopback(ref.Handler())
	if err != nil {
		return fmt.Errorf("failover: reference: %w", err)
	}
	defer refHS.Close()

	client := &http.Client{Timeout: 10 * time.Second}

	// Pre-build every batch so a re-delivery is bit-identical to the
	// original: monotonic ids over two Gaussian blobs, the same synthetic
	// shape the load mode pours in.
	rng := rand.New(rand.NewSource(424242))
	batches := make([][]byte, cfg.batches)
	id := int64(0)
	for i := range batches {
		pts := make([]ingestPoint, cfg.batch)
		for j := range pts {
			c := float64(rng.Intn(2)) * 20
			pts[j] = ingestPoint{
				ID:     id,
				Time:   id,
				Coords: []float64{c + rng.NormFloat64(), c + rng.NormFloat64()},
			}
			id++
		}
		batches[i], _ = json.Marshal(pts)
	}

	acks := make([][]byte, cfg.batches)
	deduped := 0
	dupesLeft := cfg.dupes

	// deliver sends batch i for the first time: it must be applied, not
	// answered from the dedup window.
	deliver := func(who, base string, i int) ([]byte, error) {
		resp, ack, err := postSeqBatch(client, base, i+1, batches[i])
		if err != nil {
			return nil, fmt.Errorf("%s: batch %d: %w", who, i, err)
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("%s: batch %d: status %d: %s", who, i, resp.StatusCode, ack)
		}
		if resp.Header.Get("X-Disc-Deduped") != "" {
			return nil, fmt.Errorf("%s: batch %d: first delivery answered from the dedup window", who, i)
		}
		return ack, nil
	}
	// redeliver retries batch i: it must dedup, not re-apply, and the
	// replayed acknowledgment must be the original one.
	redeliver := func(who, base string, i int) error {
		resp, ack, err := postSeqBatch(client, base, i+1, batches[i])
		if err != nil {
			return fmt.Errorf("%s: redelivered batch %d: %w", who, i, err)
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: redelivered batch %d: status %d: %s", who, i, resp.StatusCode, ack)
		}
		if resp.Header.Get("X-Disc-Deduped") != "1" {
			return fmt.Errorf("%s: redelivered batch %d: applied twice instead of deduplicated", who, i)
		}
		if !bytes.Equal(ack, acks[i]) {
			return fmt.Errorf("%s: redelivered batch %d: replayed ack differs from the original:\n got %s\nwant %s",
				who, i, ack, acks[i])
		}
		return nil
	}
	// sendBoth drives batch i into the current leader and the reference and
	// cross-checks their acknowledgments, which are a pure function of the
	// batch sequence.
	sendBoth := func(who, base string, i int) error {
		ack, err := deliver(who, base, i)
		if err != nil {
			return err
		}
		acks[i] = ack
		refAck, err := deliver("reference", refBase, i)
		if err != nil {
			return err
		}
		if !bytes.Equal(ack, refAck) {
			return fmt.Errorf("batch %d: %s ack %s != reference ack %s", i, who, ack, refAck)
		}
		return nil
	}

	// Phase 1: sequenced ingest into the original leader, with random
	// duplicate re-deliveries (at-least-once delivery simulated). Retries
	// stay within the last few sequence numbers so they land inside the
	// dedup window.
	for i := 0; i < killat; i++ {
		if err := sendBoth("leader", leaderBase, i); err != nil {
			return fmt.Errorf("failover: %w", err)
		}
		if dupesLeft > 0 && i > 0 && rng.Intn(2) == 0 {
			j := i - rng.Intn(min(i, 8))
			if err := redeliver("leader", leaderBase, j); err != nil {
				return fmt.Errorf("failover: %w", err)
			}
			deduped++
			dupesLeft--
		}
	}
	leaderStrides := parseStrides(acks[killat-1])

	// Crash: the leader is abandoned with no shutdown, no final checkpoint,
	// no log close — and its log tail gets a torn frame appended, the state
	// a crash mid-append leaves behind. Everything acknowledged so far is
	// already fsynced, so nothing may be lost.
	fmt.Fprintf(out, "discload: killing leader after batch %d (stride %d), tearing the log tail\n",
		killat-1, leaderStrides)
	leaderHS.Close()
	if err := tearWALTail(walDir); err != nil {
		return fmt.Errorf("failover: %w", err)
	}

	fol, err := server.NewFollower(server.FollowerConfig{
		Server: serverCfg, WALDir: walDir, Poll: 2 * time.Millisecond,
	})
	if err != nil {
		return fmt.Errorf("failover: follower: %w", err)
	}
	runErr := make(chan error, 1)
	ctx, cancelRun := context.WithCancel(context.Background())
	defer cancelRun()
	go func() { runErr <- fol.Run(ctx) }()
	folBase, folHS, err := serveLoopback(fol.Handler())
	if err != nil {
		return fmt.Errorf("failover: follower: %w", err)
	}
	defer folHS.Close()

	// The follower must catch up to the leader's last acknowledged stride
	// through its public read surface — and refuse writes until promoted.
	deadline := time.Now().Add(30 * time.Second)
	for {
		got, err := getStrides(client, folBase)
		if err != nil {
			return fmt.Errorf("failover: follower stats: %w", err)
		}
		if got >= leaderStrides {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("failover: follower stuck at stride %d, leader acknowledged %d", got, leaderStrides)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if resp, body, err := postSeqBatch(client, folBase, killat, batches[killat-1]); err != nil {
		return fmt.Errorf("failover: pre-promotion write probe: %w", err)
	} else if resp.StatusCode != http.StatusForbidden {
		return fmt.Errorf("failover: unpromoted follower accepted a write: status %d: %s", resp.StatusCode, body)
	}

	resp, body, err := postJSON(client, folBase+"/promote", nil)
	if err != nil {
		return fmt.Errorf("failover: promote: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("failover: promote: status %d: %s", resp.StatusCode, body)
	}
	if err := <-runErr; err != nil {
		return fmt.Errorf("failover: follower tail: %w", err)
	}
	fmt.Fprintf(out, "discload: follower promoted at stride %d\n", leaderStrides)

	// The client never saw the crash: it retries the batches it sent last.
	// The promoted follower rebuilt the dedup window from the log, so both
	// must come back deduplicated with their original bodies.
	for i := killat - 2; i < killat; i++ {
		if err := redeliver("promoted follower", folBase, i); err != nil {
			return fmt.Errorf("failover: %w", err)
		}
		deduped++
	}

	// Phase 2: the rest of the script flows into the new leader, duplicate
	// re-deliveries included.
	for i := killat; i < cfg.batches; i++ {
		if err := sendBoth("promoted follower", folBase, i); err != nil {
			return fmt.Errorf("failover: %w", err)
		}
		if dupesLeft > 0 && rng.Intn(2) == 0 {
			j := i - rng.Intn(min(i-killat+1, 8))
			if err := redeliver("promoted follower", folBase, j); err != nil {
				return fmt.Errorf("failover: %w", err)
			}
			deduped++
			dupesLeft--
		}
	}

	// Survivor vs. oracle: equal states serialize to equal bytes (the
	// checkpoint snapshot is sorted, the dedup table is sorted, the view
	// bodies are pure functions of state), so byte equality across the
	// whole read surface is the exactly-once verdict.
	for _, path := range []string{"/checkpoint", "/stats", "/clusters", "/events"} {
		got, err := getBytes(client, folBase+path)
		if err != nil {
			return fmt.Errorf("failover: promoted follower %s: %w", path, err)
		}
		want, err := getBytes(client, refBase+path)
		if err != nil {
			return fmt.Errorf("failover: reference %s: %w", path, err)
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("failover: %s diverged between promoted follower and reference (%d vs %d bytes)",
				path, len(got), len(want))
		}
	}

	finalStrides := parseStrides(acks[cfg.batches-1])
	fmt.Fprintf(out, "discload: failover OK — %d batches (%d before the kill), %d duplicate deliveries deduplicated, final stride %d, state byte-identical across /checkpoint /stats /clusters /events\n",
		cfg.batches, killat, deduped, finalStrides)
	return nil
}

// serveLoopback starts h on an ephemeral loopback port.
func serveLoopback(h http.Handler) (string, *http.Server, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: h}
	go hs.Serve(ln)
	return "http://" + ln.Addr().String(), hs, nil
}

// postSeqBatch delivers one batch under the soak's client identity and
// the given 1-based sequence number.
func postSeqBatch(client *http.Client, base string, seq int, body []byte) (*http.Response, []byte, error) {
	req, err := http.NewRequest(http.MethodPost, base+"/ingest", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Disc-Client", soakClient)
	req.Header.Set("X-Disc-Seq", strconv.Itoa(seq))
	resp, err := client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp, b, err
}

func postJSON(client *http.Client, url string, body []byte) (*http.Response, []byte, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp, b, err
}

func getBytes(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, b)
	}
	return b, nil
}

// parseStrides pulls the stride counter out of an ingest acknowledgment.
func parseStrides(ack []byte) uint64 {
	var ir struct {
		Strides uint64 `json:"strides"`
	}
	json.Unmarshal(ack, &ir)
	return ir.Strides
}

// getStrides reads the stride counter off GET /stats.
func getStrides(client *http.Client, base string) (uint64, error) {
	b, err := getBytes(client, base+"/stats")
	if err != nil {
		return 0, err
	}
	var sr struct {
		Stats struct {
			Strides uint64 `json:"strides"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(b, &sr); err != nil {
		return 0, err
	}
	return sr.Stats.Strides, nil
}

// tearWALTail appends a truncated frame header to the newest log segment
// — the bytes a leader killed mid-append leaves behind. The follower must
// wait at the tear rather than guess past it, and promotion must repair
// it away before appending.
func tearWALTail(dir string) error {
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.wseg"))
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		return fmt.Errorf("no wal segments in %s", dir)
	}
	sort.Strings(segs)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write([]byte("DCKP\x00\x00")); err != nil {
		return err
	}
	return f.Close()
}
