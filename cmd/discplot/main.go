// Command discplot renders DISC artifacts as SVG:
//
//   - scatter mode (default): a cluster dump (the CSV files discbench
//     -fig 12 writes, or disccli -dump output), one color per cluster,
//     gray for noise. The input needs header columns x,y,...,cluster.
//   - timeline mode (-timeline): a cluster-evolution event log (the JSON
//     the discserver /events endpoint returns) as a swim-lane chart, one
//     lane per cluster.
//
// Usage:
//
//	discplot -i out/fig12_maze_disc.csv -o maze_disc.svg -title "Maze / DISC"
//	curl -s localhost:8080/events | discplot -timeline -o events.svg
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"disc/internal/plot"
)

func main() {
	in := flag.String("i", "-", "input CSV (default stdin)")
	out := flag.String("o", "-", "output SVG (default stdout)")
	title := flag.String("title", "", "plot title")
	width := flag.Int("w", 800, "canvas width")
	height := flag.Int("h", 600, "canvas height")
	radius := flag.Float64("r", 2, "dot radius")
	timeline := flag.Bool("timeline", false, "input is a JSON event log (discserver /events); render a swim-lane timeline")
	flag.Parse()

	var reader io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		reader = f
	}
	var writer io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		writer = f
	}
	opts := plot.Options{Width: *width, Height: *height, Radius: *radius, Title: *title}

	if *timeline {
		events, err := readEvents(reader)
		if err != nil {
			fail(err)
		}
		if err := plot.Timeline(writer, events, opts); err != nil {
			fail(err)
		}
		if *out != "-" {
			fmt.Fprintf(os.Stderr, "%d events -> %s\n", len(events), *out)
		}
		return
	}

	dots, err := readDots(reader)
	if err != nil {
		fail(err)
	}
	if err := plot.SVG(writer, dots, opts); err != nil {
		fail(err)
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "%d points -> %s\n", len(dots), *out)
	}
}

// readEvents parses the JSON event array the discserver /events endpoint
// emits.
func readEvents(r io.Reader) ([]plot.TimelineEvent, error) {
	var raw []struct {
		Stride  uint64 `json:"stride"`
		Type    string `json:"type"`
		Cluster int    `json:"cluster"`
	}
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, fmt.Errorf("parsing event log: %w", err)
	}
	out := make([]plot.TimelineEvent, len(raw))
	for i, e := range raw {
		out[i] = plot.TimelineEvent{Stride: e.Stride, Type: e.Type, Cluster: e.Cluster}
	}
	return out, nil
}

// readDots parses x, y, and cluster columns (located by header name; x and
// y default to the first two columns).
func readDots(r io.Reader) ([]plot.Dot, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("reading header: %w", err)
	}
	xi, yi, ci := 0, 1, -1
	for i, name := range header {
		switch name {
		case "x":
			xi = i
		case "y":
			yi = i
		case "cluster":
			ci = i
		}
	}
	if ci < 0 {
		return nil, fmt.Errorf("no 'cluster' column in header %v", header)
	}
	var dots []plot.Dot
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		x, err := strconv.ParseFloat(rec[xi], 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad x %q", line, rec[xi])
		}
		y, err := strconv.ParseFloat(rec[yi], 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad y %q", line, rec[yi])
		}
		c, err := strconv.Atoi(rec[ci])
		if err != nil {
			return nil, fmt.Errorf("line %d: bad cluster %q", line, rec[ci])
		}
		dots = append(dots, plot.Dot{X: x, Y: y, Cluster: c})
	}
	return dots, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "discplot:", err)
	os.Exit(1)
}
