// Command discbench regenerates the tables and figures of the DISC paper's
// evaluation (§VI) on the synthetic dataset analogs.
//
// Usage:
//
//	discbench -fig 4            # one figure (4..12)
//	discbench -fig table2       # the parameter table
//	discbench -fig ext3,ext4    # a comma-separated subset
//	discbench -fig all          # everything, in paper order
//	discbench -fig 9 -scale 0.5 # half-size windows (faster)
//
// Fig. 12 additionally writes CSV cluster dumps under -outdir. Unless -json
// is set to the empty string, every run also writes a machine-readable
// throughput summary (all measured rows plus host metadata) to BENCH_disc.json.
// With -stridelog file.jsonl, every measured DISC stride additionally emits
// one JSON record (phase timings, Δ sizes, ex/neo-core counts, search and
// prune counters, evolution events), and exact stride-latency percentiles
// are folded into the BENCH_disc.json summary.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"disc/internal/bench"
	"disc/internal/trace"
)

func main() {
	fig := flag.String("fig", "all", "figures to regenerate: 4..12, table2, a comma-separated list, or all")
	scale := flag.Float64("scale", 1, "window scale relative to the (already scaled-down) Table II defaults")
	strides := flag.Int("strides", 10, "measured strides per engine run")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-engine-run time budget (DNF beyond)")
	memcap := flag.Int64("memcap", 5_000_000, "EXTRA-N resident bookkeeping budget in items (DNF beyond)")
	outdir := flag.String("outdir", "out", "directory for Fig. 12 cluster dumps")
	seed := flag.Int64("seed", 0, "dataset seed override (0 keeps defaults)")
	csvPath := flag.String("csv", "", "also export every measured row to this CSV file")
	jsonPath := flag.String("json", "BENCH_disc.json", "write the JSON throughput summary here (empty disables)")
	strideLogPath := flag.String("stridelog", "", "write one JSON record per measured DISC stride to this JSONL file")
	traceSlow := flag.Duration("traceslow", 0,
		"record span trees for measured DISC strides, retaining those slower than this threshold (0 disables tracing)")
	traceDump := flag.String("tracedump", "",
		"write retained slow traces as JSON to this file after the run (requires -traceslow)")
	flag.Parse()

	opts := bench.Options{
		Out:       os.Stdout,
		Scale:     *scale,
		Strides:   *strides,
		Timeout:   *timeout,
		MemoryCap: *memcap,
		OutDir:    *outdir,
		Seed:      *seed,
	}

	var strideLog *bench.StrideLogger
	if *strideLogPath != "" {
		f, err := os.Create(*strideLogPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "discbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		strideLog = bench.NewStrideLogger(f)
		opts.StrideLog = strideLog
	}

	var tracer *trace.Tracer
	if *traceSlow > 0 {
		tracer = trace.NewTracer(trace.Config{SlowThreshold: *traceSlow})
		opts.Tracer = tracer
		if strideLog != nil {
			strideLog.SetTraceThreshold(*traceSlow)
		}
	}

	var allRows []bench.Row
	run := func(id string) error {
		if strideLog != nil {
			strideLog.SetFigure(id)
		}
		if id == "table2" {
			fmt.Println("\n[Table II] thresholds and window sizes (scaled analogs)")
			return bench.Table2(opts)
		}
		f, ok := bench.Figures()[id]
		if !ok {
			return fmt.Errorf("unknown figure %q (have table2, %v)", id, bench.FigureIDs())
		}
		start := time.Now()
		rows, err := f(opts)
		allRows = append(allRows, rows...)
		fmt.Printf("\n  (figure %s regenerated in %v)\n", id, time.Since(start).Round(time.Millisecond))
		return err
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "discbench:", err)
		os.Exit(1)
	}
	if *fig == "all" {
		if err := run("table2"); err != nil {
			fail(err)
		}
		for _, id := range bench.FigureIDs() {
			if err := run(id); err != nil {
				fail(err)
			}
		}
	} else {
		for _, id := range strings.Split(*fig, ",") {
			if err := run(strings.TrimSpace(id)); err != nil {
				fail(err)
			}
		}
	}
	if *csvPath != "" {
		if err := bench.WriteRowsCSV(*csvPath, allRows); err != nil {
			fail(err)
		}
		fmt.Printf("\n%d rows exported to %s\n", len(allRows), *csvPath)
	}
	if strideLog != nil {
		fmt.Printf("\n%d stride records logged to %s\n", strideLog.Lines(), *strideLogPath)
	}
	if tracer != nil && *traceDump != "" {
		f, err := os.Create(*traceDump)
		if err != nil {
			fail(err)
		}
		if err := tracer.WriteJSON(f, true); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("\nslow traces (total > %v) dumped to %s\n", *traceSlow, *traceDump)
	}
	if *jsonPath != "" {
		var lat *bench.LatencySummary
		if strideLog != nil {
			lat = strideLog.Summary()
		}
		if err := bench.WriteRowsJSON(*jsonPath, allRows, lat); err != nil {
			fail(err)
		}
		fmt.Printf("\n%d rows summarized in %s\n", len(allRows), *jsonPath)
	}
}
