// Command benchdiff compares two `go test -bench` output files and fails
// when a gated benchmark regresses beyond a threshold. It is the CI
// regression gate behind the benchstat report: benchstat renders the
// human-readable comparison, benchdiff turns "median Advance latency got
// >10% slower" — or "the zero-alloc steady state started allocating" —
// into a non-zero exit code.
//
// Usage:
//
//	benchdiff -old baseline.txt -new current.txt [-gate regexp]
//	          [-threshold pct] [-allocthreshold pct]
//
// Three metrics are tracked per benchmark: ns/op always, plus B/op and
// allocs/op when the files were produced with -benchmem. ns/op gates at
// -threshold; the allocation metrics gate at -allocthreshold. A gated
// benchmark whose baseline allocation metric is exactly zero fails on ANY
// increase: percentages are meaningless against a zero base, and the whole
// point of pinning 0 allocs/op is that the first new allocation is the
// regression.
//
// Both files hold raw `go test -bench` output, ideally with -count>1 so the
// median is taken over several samples. Benchmark names are compared with
// the -N GOMAXPROCS suffix stripped. Benchmarks present in only one file are
// reported and skipped.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchLine matches one result line, e.g.
//
//	BenchmarkAdvance-4   100   11761106 ns/op   123 B/op   4 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.+)$`)

// metricPair matches one "value unit" measurement within a result line.
var metricPair = regexp.MustCompile(`([0-9]+(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?) (ns/op|B/op|allocs/op)`)

// metricOrder fixes the reporting order; gated alloc metrics follow time.
var metricOrder = []string{"ns/op", "B/op", "allocs/op"}

// samples holds, per benchmark name, per metric, the observed values.
type samples map[string]map[string][]float64

// parseBench collects per-metric samples per benchmark name from a -bench
// output file. B/op and allocs/op appear only under -benchmem; their absence
// simply leaves those metrics empty.
func parseBench(path string) (samples, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(samples)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		for _, pair := range metricPair.FindAllStringSubmatch(m[2], -1) {
			v, err := strconv.ParseFloat(pair[1], 64)
			if err != nil {
				continue
			}
			if out[name] == nil {
				out[name] = make(map[string][]float64)
			}
			out[name][pair[2]] = append(out[name][pair[2]], v)
		}
	}
	return out, sc.Err()
}

// median returns the middle sample (mean of the middle two for even counts).
func median(s []float64) float64 {
	c := append([]float64(nil), s...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// gateVerdict decides one gated comparison: the allowed regression is
// threshold percent, except that a zero baseline admits no increase at all.
func gateVerdict(base, nv, threshold float64) (fail bool, deltaPct float64) {
	if base == 0 {
		return nv > 0, 0
	}
	deltaPct = (nv - base) / base * 100
	return deltaPct > threshold, deltaPct
}

func main() {
	oldPath := flag.String("old", "", "baseline go test -bench output")
	newPath := flag.String("new", "", "current go test -bench output")
	gate := flag.String("gate", "^BenchmarkAdvance$", "regexp of benchmarks whose ns/op regression fails the run")
	allocGate := flag.String("allocgate", "", "regexp of benchmarks whose B/op and allocs/op regression fails the run (defaults to -gate); may include benchmarks too timing-noisy for the ns/op gate")
	threshold := flag.Float64("threshold", 10, "allowed median ns/op regression for gated benchmarks, percent")
	allocThreshold := flag.Float64("allocthreshold", 10, "allowed median B/op and allocs/op regression for gated benchmarks, percent (zero baselines admit no increase)")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old and -new are required")
		os.Exit(2)
	}
	gateRE, err := regexp.Compile(*gate)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: bad -gate: %v\n", err)
		os.Exit(2)
	}
	if *allocGate == "" {
		*allocGate = *gate
	}
	allocGateRE, err := regexp.Compile(*allocGate)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: bad -allocgate: %v\n", err)
		os.Exit(2)
	}
	oldRes, err := parseBench(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	newRes, err := parseBench(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(newRes))
	for name := range newRes {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		ov, ok := oldRes[name]
		if !ok {
			fmt.Printf("%-60s new benchmark, no baseline\n", name)
			continue
		}
		for _, metric := range metricOrder {
			newSamp, hasNew := newRes[name][metric]
			oldSamp, hasOld := ov[metric]
			if !hasNew || !hasOld {
				continue
			}
			nv, base := median(newSamp), median(oldSamp)
			th, gated := *threshold, gateRE.MatchString(name)
			if metric != "ns/op" {
				th, gated = *allocThreshold, allocGateRE.MatchString(name)
			}
			fail, deltaPct := gateVerdict(base, nv, th)
			status := "ok"
			switch {
			case !gated:
				status = "info"
			case fail && base == 0:
				status = "FAIL (baseline 0)"
				failed = true
			case fail:
				status = fmt.Sprintf("FAIL (> %.0f%%)", th)
				failed = true
			}
			fmt.Printf("%-60s %14.0f -> %14.0f %-9s  %+6.1f%%  %s\n",
				name, base, nv, metric, deltaPct, status)
		}
	}
	for name := range oldRes {
		if _, ok := newRes[name]; !ok {
			fmt.Printf("%-60s removed (present only in baseline)\n", name)
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchdiff: gated benchmark regressed beyond threshold")
		os.Exit(1)
	}
}
