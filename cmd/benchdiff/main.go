// Command benchdiff compares two `go test -bench` output files and fails
// when a gated benchmark's median ns/op regresses beyond a threshold. It is
// the CI regression gate behind the benchstat report: benchstat renders the
// human-readable comparison, benchdiff turns "median Advance latency got
// >10% slower" into a non-zero exit code.
//
// Usage:
//
//	benchdiff -old baseline.txt -new current.txt [-gate regexp] [-threshold pct]
//
// Both files hold raw `go test -bench` output, ideally with -count>1 so the
// median is taken over several samples. Benchmark names are compared with
// the -N GOMAXPROCS suffix stripped. Benchmarks present in only one file are
// reported and skipped.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchLine matches one result line, e.g.
//
//	BenchmarkAdvance-4   100   11761106 ns/op   123 B/op   4 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parseBench collects ns/op samples per benchmark name from a -bench output
// file.
func parseBench(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string][]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		out[m[1]] = append(out[m[1]], v)
	}
	return out, sc.Err()
}

// median returns the middle sample (mean of the middle two for even counts).
func median(samples []float64) float64 {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func main() {
	oldPath := flag.String("old", "", "baseline go test -bench output")
	newPath := flag.String("new", "", "current go test -bench output")
	gate := flag.String("gate", "^BenchmarkAdvance$", "regexp of benchmarks that fail the run on regression")
	threshold := flag.Float64("threshold", 10, "allowed median regression for gated benchmarks, percent")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old and -new are required")
		os.Exit(2)
	}
	gateRE, err := regexp.Compile(*gate)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: bad -gate: %v\n", err)
		os.Exit(2)
	}
	oldRes, err := parseBench(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	newRes, err := parseBench(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(newRes))
	for name := range newRes {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		nv := median(newRes[name])
		ov, ok := oldRes[name]
		if !ok {
			fmt.Printf("%-60s new benchmark, no baseline\n", name)
			continue
		}
		base := median(ov)
		deltaPct := 0.0
		if base > 0 {
			deltaPct = (nv - base) / base * 100
		}
		gated := gateRE.MatchString(name)
		status := "ok"
		if gated && deltaPct > *threshold {
			status = fmt.Sprintf("FAIL (> %.0f%%)", *threshold)
			failed = true
		} else if !gated {
			status = "info"
		}
		fmt.Printf("%-60s %14.0f -> %14.0f ns/op  %+6.1f%%  %s\n", name, base, nv, deltaPct, status)
	}
	for name := range oldRes {
		if _, ok := newRes[name]; !ok {
			fmt.Printf("%-60s removed (present only in baseline)\n", name)
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchdiff: gated benchmark regressed beyond threshold")
		os.Exit(1)
	}
}
