package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseBenchMedian(t *testing.T) {
	p := writeTemp(t, "bench.txt", `goos: linux
goarch: amd64
pkg: disc/internal/core
BenchmarkAdvance-4   	     100	  11000000 ns/op	  123 B/op	       4 allocs/op
BenchmarkAdvance-4   	     100	  13000000 ns/op
BenchmarkAdvance-4   	     100	  12000000 ns/op	  125 B/op	       6 allocs/op
BenchmarkClusterWorkers/workers=4-4  	      20	 135814949 ns/op
PASS
`)
	res, err := parseBench(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res["BenchmarkAdvance"]["ns/op"]); got != 3 {
		t.Fatalf("BenchmarkAdvance ns/op samples = %d, want 3", got)
	}
	if m := median(res["BenchmarkAdvance"]["ns/op"]); m != 12000000 {
		t.Fatalf("median = %v, want 12000000", m)
	}
	// -benchmem columns parse when present and stay absent otherwise.
	if got := len(res["BenchmarkAdvance"]["allocs/op"]); got != 2 {
		t.Fatalf("allocs/op samples = %d, want 2", got)
	}
	if m := median(res["BenchmarkAdvance"]["B/op"]); m != 124 {
		t.Fatalf("B/op median = %v, want 124", m)
	}
	if got := len(res["BenchmarkClusterWorkers/workers=4"]["ns/op"]); got != 1 {
		t.Fatalf("subbenchmark not parsed: %+v", res)
	}
	if _, ok := res["BenchmarkClusterWorkers/workers=4"]["allocs/op"]; ok {
		t.Fatal("phantom allocs/op samples for a line without -benchmem columns")
	}
}

func TestParseBenchScientificNotation(t *testing.T) {
	// go test prints large values in scientific notation under some flags.
	p := writeTemp(t, "sci.txt", "BenchmarkBig-8   10   1.5e+07 ns/op   2e+06 B/op   100 allocs/op\n")
	res, err := parseBench(p)
	if err != nil {
		t.Fatal(err)
	}
	if m := median(res["BenchmarkBig"]["ns/op"]); m != 1.5e7 {
		t.Fatalf("ns/op = %v, want 1.5e7", m)
	}
	if m := median(res["BenchmarkBig"]["B/op"]); m != 2e6 {
		t.Fatalf("B/op = %v, want 2e6", m)
	}
}

func TestMedianEven(t *testing.T) {
	if m := median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Fatalf("median = %v, want 2.5", m)
	}
}

func TestGateVerdict(t *testing.T) {
	cases := []struct {
		name      string
		base, nv  float64
		threshold float64
		wantFail  bool
	}{
		{"within threshold", 100, 105, 10, false},
		{"at threshold", 100, 110, 10, false},
		{"beyond threshold", 100, 111, 10, true},
		{"improvement", 100, 50, 10, false},
		{"zero baseline stays zero", 0, 0, 10, false},
		{"zero baseline any increase", 0, 1, 10, true},
		{"zero baseline big increase", 0, 5000, 10, true},
	}
	for _, tc := range cases {
		if fail, _ := gateVerdict(tc.base, tc.nv, tc.threshold); fail != tc.wantFail {
			t.Errorf("%s: gateVerdict(%g, %g, %g) fail = %v, want %v",
				tc.name, tc.base, tc.nv, tc.threshold, fail, tc.wantFail)
		}
	}
}
