package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseBenchMedian(t *testing.T) {
	p := writeTemp(t, "bench.txt", `goos: linux
goarch: amd64
pkg: disc/internal/core
BenchmarkAdvance-4   	     100	  11000000 ns/op	  123 B/op	       4 allocs/op
BenchmarkAdvance-4   	     100	  13000000 ns/op
BenchmarkAdvance-4   	     100	  12000000 ns/op
BenchmarkClusterWorkers/workers=4-4  	      20	 135814949 ns/op
PASS
`)
	res, err := parseBench(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res["BenchmarkAdvance"]); got != 3 {
		t.Fatalf("BenchmarkAdvance samples = %d, want 3", got)
	}
	if m := median(res["BenchmarkAdvance"]); m != 12000000 {
		t.Fatalf("median = %v, want 12000000", m)
	}
	if got := len(res["BenchmarkClusterWorkers/workers=4"]); got != 1 {
		t.Fatalf("subbenchmark not parsed: %+v", res)
	}
}

func TestMedianEven(t *testing.T) {
	if m := median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Fatalf("median = %v, want 2.5", m)
	}
}
