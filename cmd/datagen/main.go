// Command datagen emits one of the built-in synthetic benchmark streams as
// CSV (id, time, coordinates, and the ground-truth label when the generator
// defines one).
//
// Usage:
//
//	datagen -dataset maze -n 100000 -seed 7 > maze.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"disc/internal/datasets"
)

func main() {
	name := flag.String("dataset", "maze", "generator: "+strings.Join(datasets.Names(), ", "))
	n := flag.Int("n", 100000, "number of points")
	seed := flag.Int64("seed", 42, "generator seed")
	out := flag.String("o", "-", "output file (default stdout)")
	flag.Parse()

	ds, err := datasets.ByName(*name, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := datasets.WriteCSV(w, ds); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}
