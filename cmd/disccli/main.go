// Command disccli clusters a CSV point stream continuously with a sliding
// window, printing a per-stride summary and finally the labeling of the last
// window.
//
// Input format: one point per line, "id,time,x0[,x1[,x2[,x3]]]" with an
// optional header line (detected and skipped). Extra columns are ignored.
//
// Usage:
//
//	datagen -dataset dtg -n 50000 | disccli -dims 2 -eps 0.002 -minpts 40 \
//	    -window 20000 -stride 1000 -engine disc
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"disc/internal/bench"
	"disc/internal/geom"
	"disc/internal/model"
	"disc/internal/window"
)

func main() {
	dims := flag.Int("dims", 2, "number of coordinates per point (1-4)")
	eps := flag.Float64("eps", 1.0, "distance threshold ε")
	minPts := flag.Int("minpts", 5, "density threshold τ (count includes the point itself)")
	win := flag.Int("window", 10000, "sliding window size in points")
	stride := flag.Int("stride", 500, "stride size in points")
	engine := flag.String("engine", "disc", "engine: "+strings.Join(bench.EngineKinds(), ", "))
	in := flag.String("i", "-", "input file (default stdin)")
	dump := flag.String("dump", "", "write the final window's labeling as CSV to this file")
	quiet := flag.Bool("q", false, "suppress per-stride lines")
	flag.Parse()

	cfg := model.Config{Dims: *dims, Eps: *eps, MinPts: *minPts}
	if err := cfg.Validate(); err != nil {
		fail(err)
	}
	eng, err := bench.NewEngine(*engine, cfg, *win, *stride)
	if err != nil {
		fail(err)
	}
	slider, err := window.NewCountSlider(*win, *stride)
	if err != nil {
		fail(err)
	}

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		r = f
	}

	var lastWindow []model.Point
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		p, err := parsePoint(line, *dims)
		if err != nil {
			if lineNo == 1 {
				continue // header
			}
			fail(fmt.Errorf("line %d: %w", lineNo, err))
		}
		step := slider.Push(p)
		if step == nil {
			continue
		}
		t0 := time.Now()
		eng.Advance(step.In, step.Out)
		el := time.Since(t0)
		lastWindow = append(lastWindow[:0], step.Window...)
		if !*quiet {
			snap := eng.Snapshot()
			clusters := map[int]int{}
			noise := 0
			for _, a := range snap {
				if a.ClusterID == model.NoCluster {
					noise++
				} else {
					clusters[a.ClusterID]++
				}
			}
			s := eng.Stats()
			fmt.Printf("stride %4d: window=%d clusters=%d noise=%d elapsed=%s searches=%d splits=%d merges=%d\n",
				s.Strides, len(step.Window), len(clusters), noise, el.Round(time.Microsecond),
				s.RangeSearches, s.Splits, s.Merges)
		}
	}
	if err := scanner.Err(); err != nil {
		fail(err)
	}

	if *dump != "" && lastWindow != nil {
		f, err := os.Create(*dump)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w := bufio.NewWriter(f)
		defer w.Flush()
		header := "id"
		for d := 0; d < *dims; d++ {
			header += fmt.Sprintf(",x%d", d)
		}
		fmt.Fprintln(w, header+",label,cluster")
		for _, p := range lastWindow {
			a, _ := eng.Assignment(p.ID)
			fmt.Fprintf(w, "%d", p.ID)
			for d := 0; d < *dims; d++ {
				fmt.Fprintf(w, ",%g", p.Pos[d])
			}
			fmt.Fprintf(w, ",%s,%d\n", a.Label, a.ClusterID)
		}
		fmt.Fprintf(os.Stderr, "final labeling written to %s\n", *dump)
	}
}

func parsePoint(line string, dims int) (model.Point, error) {
	fields := strings.Split(line, ",")
	if len(fields) < 2+dims {
		return model.Point{}, fmt.Errorf("need %d fields (id,time,%d coords), got %d", 2+dims, dims, len(fields))
	}
	id, err := strconv.ParseInt(strings.TrimSpace(fields[0]), 10, 64)
	if err != nil {
		return model.Point{}, fmt.Errorf("bad id %q", fields[0])
	}
	ts, err := strconv.ParseInt(strings.TrimSpace(fields[1]), 10, 64)
	if err != nil {
		return model.Point{}, fmt.Errorf("bad time %q", fields[1])
	}
	var v geom.Vec
	for d := 0; d < dims; d++ {
		x, err := strconv.ParseFloat(strings.TrimSpace(fields[2+d]), 64)
		if err != nil {
			return model.Point{}, fmt.Errorf("bad coordinate %q", fields[2+d])
		}
		v[d] = x
	}
	return model.Point{ID: id, Time: ts, Pos: v}, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "disccli:", err)
	os.Exit(1)
}
