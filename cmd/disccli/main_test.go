package main

import (
	"strings"
	"testing"
)

func TestParsePoint(t *testing.T) {
	p, err := parsePoint("7,42,1.5,-2.25", 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.ID != 7 || p.Time != 42 || p.Pos[0] != 1.5 || p.Pos[1] != -2.25 {
		t.Fatalf("parsed %+v", p)
	}
}

func TestParsePointHigherDims(t *testing.T) {
	p, err := parsePoint("1,2,1,2,3,4", 4)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 4; d++ {
		if p.Pos[d] != float64(d+1) {
			t.Fatalf("dim %d = %g", d, p.Pos[d])
		}
	}
}

func TestParsePointIgnoresExtraColumns(t *testing.T) {
	p, err := parsePoint("1,2,3.5,4.5,GARBAGE,MORE", 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Pos[0] != 3.5 || p.Pos[1] != 4.5 {
		t.Fatalf("parsed %+v", p)
	}
}

func TestParsePointWhitespace(t *testing.T) {
	p, err := parsePoint(" 1 , 2 , 3.5 , 4.5 ", 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.ID != 1 || p.Pos[1] != 4.5 {
		t.Fatalf("parsed %+v", p)
	}
}

func TestParsePointErrors(t *testing.T) {
	cases := []struct {
		line string
		dims int
		want string
	}{
		{"1,2", 2, "need 4 fields"},
		{"x,2,3,4", 2, "bad id"},
		{"1,y,3,4", 2, "bad time"},
		{"1,2,z,4", 2, "bad coordinate"},
		{"", 1, "need 3 fields"},
	}
	for _, tc := range cases {
		_, err := parsePoint(tc.line, tc.dims)
		if err == nil {
			t.Errorf("parsePoint(%q, %d) accepted", tc.line, tc.dims)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("parsePoint(%q): error %q does not mention %q", tc.line, err, tc.want)
		}
	}
}
