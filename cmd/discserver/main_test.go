package main

import (
	"math"
	"strings"
	"testing"
)

// TestValidateFlags: the startup flag validation must reject every
// out-of-range clustering parameter with a message naming the flag —
// before the fix -dims documented "1-4" but accepted anything, and a NaN
// -eps sailed through into distance comparisons.
func TestValidateFlags(t *testing.T) {
	ok := func(dims int, eps float64, minPts, win, stride int) error {
		return validateFlags(dims, eps, minPts, win, stride, 16, 8)
	}
	if err := ok(2, 1.0, 5, 10000, 500); err != nil {
		t.Fatalf("default-shaped flags rejected: %v", err)
	}

	cases := []struct {
		name   string
		err    error
		nameIn string // flag the message must mention
	}{
		{"dims zero", ok(0, 1, 5, 100, 10), "-dims"},
		{"dims negative", ok(-2, 1, 5, 100, 10), "-dims"},
		{"dims too large", ok(9, 1, 5, 100, 10), "-dims"},
		{"eps zero", ok(2, 0, 5, 100, 10), "-eps"},
		{"eps negative", ok(2, -0.5, 5, 100, 10), "-eps"},
		{"eps NaN", ok(2, math.NaN(), 5, 100, 10), "-eps"},
		{"eps Inf", ok(2, math.Inf(1), 5, 100, 10), "-eps"},
		{"minpts zero", ok(2, 1, 0, 100, 10), "-minpts"},
		{"window zero", ok(2, 1, 5, 0, 10), "-window"},
		{"window negative", ok(2, 1, 5, -100, 10), "-window"},
		{"stride zero", ok(2, 1, 5, 100, 0), "-stride"},
		{"stride > window", ok(2, 1, 5, 100, 500), "-stride"},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(c.err.Error(), c.nameIn) {
			t.Errorf("%s: error %q does not name %s", c.name, c.err, c.nameIn)
		}
	}

	if err := validateFlags(2, 1, 5, 100, 10, 0, 8); err == nil || !strings.Contains(err.Error(), "-max-streams") {
		t.Errorf("max-streams zero: %v", err)
	}
	if err := validateFlags(2, 1, 5, 100, 10, 16, 0); err == nil || !strings.Contains(err.Error(), "-metric-streams") {
		t.Errorf("metric-streams zero: %v", err)
	}
}
