// Command discserver runs the DISC stream-clustering HTTP service: ingest
// points, query clusters and their evolution over a sliding window, and
// scrape live telemetry. The process is multi-tenant — it hosts many
// independent streams, each with its own engine, window, clustering
// parameters, and checkpoint directory; the flags configure the always-on
// "default" stream, which also serves as the template for streams created
// at runtime. With -checkpoint-dir every stream checkpoints itself durably
// every -checkpoint-every strides (one shared scheduler goroutine) and
// recovers from its newest valid checkpoint when registered.
//
// Usage:
//
//	discserver -addr :8080 -dims 2 -eps 0.5 -minpts 5 -window 10000 -stride 500 \
//	    -checkpoint-dir /var/lib/discserver -checkpoint-every 20
//
// Stream registry:
//
//	POST   /streams          create a stream: {"name","dims","eps","minPts",
//	                         "window","stride","connectivity"} — omitted
//	                         fields inherit the default stream's template
//	GET    /streams          list streams with config and live counters
//	DELETE /streams/{name}   unregister a stream ("default" is undeletable)
//
// Per-stream endpoints (the historical unprefixed routes remain as aliases
// for the default stream):
//
//	POST /streams/{name}/ingest        JSON array of {"id":1,"time":2,"coords":[x,y]}
//	GET  /streams/{name}/clusters      cluster census of the current window
//	GET  /streams/{name}/points/{id}   assignment of one point
//	GET  /streams/{name}/events        cluster-evolution log (?since=<seq>)
//	GET  /streams/{name}/stats         engine work counters and configuration
//	GET  /streams/{name}/checkpoint    binary stream checkpoint
//	POST /streams/{name}/checkpoint    restore the stream and resume
//	GET  /streams/{name}/readyz        per-stream readiness
//	GET  /streams/{name}/debug/traces  recorded ingest span trees (with -trace)
//
// The query endpoints are lock-free: they serve an immutable per-stride
// view (reads never block ingestion, and streams never block each other)
// and stamp each response with the stride it reflects via X-Disc-Stride
// and a strong ETag (If-None-Match returns 304 until the next stride).
//
//	GET  /metrics       Prometheus text exposition, stream-labeled series
//	GET  /debug/vars    expvar JSON (registry published as "disc")
//	GET  /debug/pprof/  runtime profiles (only with -pprof)
//	GET  /healthz       process liveness
//
// Durability and replication: with -wal-dir every acknowledged ingest
// batch is framed and fsynced to a per-stream write-ahead log before its
// 200, so a crash between checkpoints loses nothing a client was told was
// applied. Batches may carry an X-Disc-Seq (plus X-Disc-Client) header;
// re-delivering an acknowledged (client, seq) answers 200 with the
// original body and X-Disc-Deduped: 1 instead of re-applying, making
// at-least-once delivery exactly-once. With -ingest-high-water the ingest
// path sheds load (429 + Retry-After) while the slider backlog exceeds
// the mark. With -follow <dir> the process runs as a read-only replica:
// it tails the leader's log, replays every batch through its own engine
// (bit-identical state), serves the full GET surface, and becomes the
// leader on POST /promote.
//
// On SIGINT/SIGTERM the server shuts down gracefully: in-flight requests
// (including a final checkpoint download or metrics scrape) get up to
// -drain to complete before the listener closes, and — when durable
// checkpointing is on — a final checkpoint generation is written for every
// stream so no completed stride is lost.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"disc/internal/geom"
	"disc/internal/model"
	"disc/internal/server"
	"disc/internal/trace"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dims := flag.Int("dims", 2, "coordinates per point (1-4)")
	eps := flag.Float64("eps", 1.0, "distance threshold ε")
	minPts := flag.Int("minpts", 5, "density threshold τ")
	win := flag.Int("window", 10000, "sliding window size in points")
	stride := flag.Int("stride", 500, "stride size in points")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown deadline for in-flight requests")
	ckptDir := flag.String("checkpoint-dir", "", "directory for durable checkpoints (empty = durability off)")
	ckptEvery := flag.Uint64("checkpoint-every", 20, "checkpoint every N strides")
	walDir := flag.String("wal-dir", "",
		"directory for per-stream write-ahead logs: every acknowledged ingest batch is fsynced before its 200 (empty = off)")
	ingestHW := flag.Int("ingest-high-water", 0,
		"POST .../ingest answers 429 + Retry-After while the slider backlog exceeds this many points (0 = disabled)")
	follow := flag.String("follow", "",
		"run as a read-only follower tailing this write-ahead log directory (serves the GET surface and POST /promote; single stream)")
	ckptMax := flag.Int64("checkpoint-max-bytes", server.DefaultMaxCheckpointBytes,
		"largest checkpoint accepted on restore (POST /checkpoint and recovery)")
	traceOn := flag.Bool("trace", true, "record ingest span trees and serve GET /debug/traces")
	traceRecent := flag.Int("trace-recent", trace.DefRecent, "traces retained in the recent ring")
	traceSlow := flag.Int("trace-slow", trace.DefSlow, "slow traces retained in the slow ring")
	traceSlowAt := flag.Duration("trace-slow-threshold", 250*time.Millisecond,
		"ingest latency beyond which a trace is retained in the slow ring")
	readyHW := flag.Int("ready-high-water", 0,
		"GET /readyz reports 503 while the slider backlog exceeds this many points (0 = disabled)")
	maxStreams := flag.Int("max-streams", server.DefaultMaxStreams,
		"streams the registry will host (POST /streams beyond it gets 429)")
	metricStreams := flag.Int("metric-streams", server.DefaultMetricStreams,
		"streams with a dedicated {stream=...} metric label; the rest share {stream=\"other\"}")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	// Validate the clustering flags up front with flag-level messages: a
	// typo'd -dims or a negative -eps must die here with the offending flag
	// named, not as a downstream construction error (or, worse, a NaN that
	// slips past a bare positivity check into distance comparisons).
	if err := validateFlags(*dims, *eps, *minPts, *win, *stride, *maxStreams, *metricStreams); err != nil {
		fatal("discserver: invalid flags", "err", err)
	}

	var tc *server.TraceConfig
	if *traceOn {
		tc = &server.TraceConfig{Recent: *traceRecent, Slow: *traceSlow, SlowThreshold: *traceSlowAt}
	}
	if *follow != "" {
		runFollower(logger, *addr, *follow, *ckptDir, *drain, server.Config{
			Cluster:            model.Config{Dims: *dims, Eps: *eps, MinPts: *minPts},
			Window:             *win,
			Stride:             *stride,
			EnablePprof:        *pprofOn,
			MaxCheckpointBytes: *ckptMax,
			Tracing:            tc,
			ReadyHighWater:     *readyHW,
			IngestHighWater:    *ingestHW,
		})
		return
	}
	// NewMulti recovers the default stream from its newest valid checkpoint
	// before returning (hard error if a checkpoint exists but does not
	// restore — starting fresh would silently discard the window the
	// operator meant to keep), so /readyz never exposes a window about to
	// be replaced.
	m, err := server.NewMulti(server.MultiConfig{
		Default: server.Config{
			Cluster:            model.Config{Dims: *dims, Eps: *eps, MinPts: *minPts},
			Window:             *win,
			Stride:             *stride,
			EnablePprof:        *pprofOn,
			MaxCheckpointBytes: *ckptMax,
			Tracing:            tc,
			StartNotReady:      *ckptDir != "" || *walDir != "",
			ReadyHighWater:     *readyHW,
			IngestHighWater:    *ingestHW,
		},
		MaxStreams:      *maxStreams,
		MetricStreams:   *metricStreams,
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptEvery,
		WALDir:          *walDir,
		Logger:          logger,
	})
	if err != nil {
		fatal("discserver: starting service", "err", err)
	}

	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           m.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	logger.Info("discserver listening",
		"addr", *addr, "eps", *eps, "minpts", *minPts, "window", *win, "stride", *stride,
		"max_streams", *maxStreams, "pprof", *pprofOn, "trace", *traceOn,
		"checkpoints", describeCkpt(*ckptDir, *ckptEvery), "wal", describeWAL(*walDir))

	// Serve until SIGINT/SIGTERM, then drain: Shutdown stops the listener
	// and waits for in-flight handlers (a checkpoint save mid-write, a
	// scrape) up to the deadline instead of cutting them off.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	schedDone := make(chan struct{})
	go func() {
		defer close(schedDone)
		m.RunCheckpoints(ctx) // no-op without -checkpoint-dir
	}()
	errc := make(chan error, 1)
	go func() { errc <- httpServer.ListenAndServe() }()
	select {
	case err := <-errc:
		fatal("discserver: serve failed", "err", err)
	case <-ctx.Done():
		stop()
		logger.Info("signal received, draining", "deadline", *drain)
		shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpServer.Shutdown(shutCtx); err != nil {
			fatal("discserver: shutdown", "err", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal("discserver: serve failed", "err", err)
		}
		// Wait for the scheduler's final shutdown checkpoints: the listener
		// is closed, so no new strides can arrive while they are written.
		<-schedDone
		logger.Info("shut down cleanly")
	}
}

// validateFlags rejects unusable clustering and registry parameters with
// messages that name the offending flag.
func validateFlags(dims int, eps float64, minPts, win, stride, maxStreams, metricStreams int) error {
	if dims < 1 || dims > geom.MaxDims {
		return fmt.Errorf("-dims must be 1-%d, got %d", geom.MaxDims, dims)
	}
	if math.IsNaN(eps) || math.IsInf(eps, 0) || eps <= 0 {
		return fmt.Errorf("-eps must be positive and finite, got %g", eps)
	}
	if minPts < 1 {
		return fmt.Errorf("-minpts must be at least 1, got %d", minPts)
	}
	if win <= 0 {
		return fmt.Errorf("-window must be positive, got %d", win)
	}
	if stride <= 0 {
		return fmt.Errorf("-stride must be positive, got %d", stride)
	}
	if stride > win {
		return fmt.Errorf("-stride (%d) must not exceed -window (%d)", stride, win)
	}
	if maxStreams < 1 {
		return fmt.Errorf("-max-streams must be at least 1, got %d", maxStreams)
	}
	if metricStreams < 1 {
		return fmt.Errorf("-metric-streams must be at least 1, got %d", metricStreams)
	}
	return nil
}

func describeCkpt(dir string, every uint64) string {
	if dir == "" {
		return "off"
	}
	return fmt.Sprintf("%s every %d strides", dir, every)
}

func describeWAL(dir string) string {
	if dir == "" {
		return "off"
	}
	return dir
}

// runFollower serves the read-only replica mode: tail the leader's
// write-ahead log, serve the GET surface from replayed state, and turn
// into a leader on POST /promote. A signal drains in-flight requests,
// stops the tailer, and exits; a definitively corrupt log is fatal (the
// replica must not silently serve a prefix of the stream forever).
func runFollower(logger *slog.Logger, addr, walDir, ckptDir string, drain time.Duration, cfg server.Config) {
	f, err := server.NewFollower(server.FollowerConfig{
		Server:        cfg,
		WALDir:        walDir,
		CheckpointDir: ckptDir,
		Logger:        logger,
	})
	if err != nil {
		logger.Error("discserver: starting follower", "err", err)
		os.Exit(1)
	}
	httpServer := &http.Server{
		Addr:              addr,
		Handler:           f.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	logger.Info("discserver following", "addr", addr, "wal", walDir,
		"checkpoints", describeCkpt(ckptDir, 0))

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	runErr := make(chan error, 1)
	go func() { runErr <- f.Run(ctx) }()
	errc := make(chan error, 1)
	go func() { errc <- httpServer.ListenAndServe() }()
	select {
	case err := <-errc:
		logger.Error("discserver: serve failed", "err", err)
		os.Exit(1)
	case err := <-runErr:
		// Run only returns early on unrecoverable log damage (promotion
		// stops it too, but via ctx — that path reports nil after a signal).
		if err != nil {
			logger.Error("discserver: follower tail failed", "err", err)
			os.Exit(1)
		}
		<-ctx.Done()
	case <-ctx.Done():
	}
	stop()
	logger.Info("signal received, draining", "deadline", drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := httpServer.Shutdown(shutCtx); err != nil {
		logger.Error("discserver: shutdown", "err", err)
		os.Exit(1)
	}
	logger.Info("shut down cleanly")
}
