// Command discserver runs the DISC stream-clustering HTTP service: ingest
// points, query clusters and their evolution over a sliding window, and
// scrape live telemetry.
//
// Usage:
//
//	discserver -addr :8080 -dims 2 -eps 0.5 -minpts 5 -window 10000 -stride 500
//
// Endpoints:
//
//	POST /ingest        JSON array of {"id":1,"time":2,"coords":[x,y]}
//	GET  /clusters      cluster census of the current window
//	GET  /points/{id}   assignment of one point
//	GET  /events        cluster-evolution log (?since=<seq>)
//	GET  /stats         engine work counters and configuration
//	GET  /metrics       Prometheus text exposition (per-stride histograms)
//	GET  /debug/vars    expvar JSON (registry published as "disc")
//	GET  /debug/pprof/  runtime profiles (only with -pprof)
//	GET  /checkpoint    binary service checkpoint (engine + window position)
//	POST /checkpoint    restore from a checkpoint and resume the stream
//	GET  /healthz       liveness
//
// On SIGINT/SIGTERM the server shuts down gracefully: in-flight requests
// (including a final checkpoint download or metrics scrape) get up to
// -drain to complete before the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"disc/internal/model"
	"disc/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dims := flag.Int("dims", 2, "coordinates per point (1-4)")
	eps := flag.Float64("eps", 1.0, "distance threshold ε")
	minPts := flag.Int("minpts", 5, "density threshold τ")
	win := flag.Int("window", 10000, "sliding window size in points")
	stride := flag.Int("stride", 500, "stride size in points")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown deadline for in-flight requests")
	flag.Parse()

	srv, err := server.New(server.Config{
		Cluster:     model.Config{Dims: *dims, Eps: *eps, MinPts: *minPts},
		Window:      *win,
		Stride:      *stride,
		EnablePprof: *pprofOn,
	})
	if err != nil {
		log.Fatalf("discserver: %v", err)
	}
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("discserver listening on %s (eps=%g minPts=%d window=%d stride=%d pprof=%v)\n",
		*addr, *eps, *minPts, *win, *stride, *pprofOn)

	// Serve until SIGINT/SIGTERM, then drain: Shutdown stops the listener
	// and waits for in-flight handlers (a checkpoint save mid-write, a
	// scrape) up to the deadline instead of cutting them off.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpServer.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatalf("discserver: %v", err)
	case <-ctx.Done():
		stop()
		fmt.Printf("discserver: signal received, draining for up to %v\n", *drain)
		shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpServer.Shutdown(shutCtx); err != nil {
			log.Fatalf("discserver: shutdown: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("discserver: %v", err)
		}
		fmt.Println("discserver: shut down cleanly")
	}
}
