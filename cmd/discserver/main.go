// Command discserver runs the DISC stream-clustering HTTP service: ingest
// points, query clusters and their evolution over a sliding window, and
// scrape live telemetry. With -checkpoint-dir it also checkpoints itself
// durably every -checkpoint-every strides and auto-recovers from the newest
// valid checkpoint on startup.
//
// Usage:
//
//	discserver -addr :8080 -dims 2 -eps 0.5 -minpts 5 -window 10000 -stride 500 \
//	    -checkpoint-dir /var/lib/discserver -checkpoint-every 20
//
// Endpoints:
//
//	POST /ingest        JSON array of {"id":1,"time":2,"coords":[x,y]}
//	GET  /clusters      cluster census of the current window
//	GET  /points/{id}   assignment of one point
//	GET  /events        cluster-evolution log (?since=<seq>)
//	GET  /stats         engine work counters and configuration
//
// The four query endpoints are lock-free: they serve an immutable
// per-stride view (reads never block ingestion) and stamp each response
// with the stride it reflects via X-Disc-Stride and a strong ETag
// (If-None-Match returns 304 until the next stride).
//
//	GET  /metrics       Prometheus text exposition (per-stride histograms)
//	GET  /debug/vars    expvar JSON (registry published as "disc")
//	GET  /debug/pprof/  runtime profiles (only with -pprof)
//	GET  /debug/traces  recorded ingest span trees (only with -trace)
//	GET  /checkpoint    binary service checkpoint (engine + window position)
//	POST /checkpoint    restore from a checkpoint and resume the stream
//	GET  /healthz       liveness
//	GET  /readyz        readiness (503 until recovery resolves / while backlogged)
//
// On SIGINT/SIGTERM the server shuts down gracefully: in-flight requests
// (including a final checkpoint download or metrics scrape) get up to
// -drain to complete before the listener closes, and — when durable
// checkpointing is on — a final checkpoint generation is written so no
// completed stride is lost.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"disc/internal/ckpt"
	"disc/internal/model"
	"disc/internal/obs"
	"disc/internal/server"
	"disc/internal/trace"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dims := flag.Int("dims", 2, "coordinates per point (1-4)")
	eps := flag.Float64("eps", 1.0, "distance threshold ε")
	minPts := flag.Int("minpts", 5, "density threshold τ")
	win := flag.Int("window", 10000, "sliding window size in points")
	stride := flag.Int("stride", 500, "stride size in points")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown deadline for in-flight requests")
	ckptDir := flag.String("checkpoint-dir", "", "directory for durable checkpoints (empty = durability off)")
	ckptEvery := flag.Uint64("checkpoint-every", 20, "checkpoint every N strides")
	ckptMax := flag.Int64("checkpoint-max-bytes", server.DefaultMaxCheckpointBytes,
		"largest checkpoint accepted on restore (POST /checkpoint and recovery)")
	traceOn := flag.Bool("trace", true, "record ingest span trees and serve GET /debug/traces")
	traceRecent := flag.Int("trace-recent", trace.DefRecent, "traces retained in the recent ring")
	traceSlow := flag.Int("trace-slow", trace.DefSlow, "slow traces retained in the slow ring")
	traceSlowAt := flag.Duration("trace-slow-threshold", 250*time.Millisecond,
		"ingest latency beyond which a trace is retained in the slow ring")
	readyHW := flag.Int("ready-high-water", 0,
		"GET /readyz reports 503 while the slider backlog exceeds this many points (0 = disabled)")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	var tc *server.TraceConfig
	if *traceOn {
		tc = &server.TraceConfig{Recent: *traceRecent, Slow: *traceSlow, SlowThreshold: *traceSlowAt}
	}
	srv, err := server.New(server.Config{
		Cluster:            model.Config{Dims: *dims, Eps: *eps, MinPts: *minPts},
		Window:             *win,
		Stride:             *stride,
		EnablePprof:        *pprofOn,
		MaxCheckpointBytes: *ckptMax,
		Tracing:            tc,
		StartNotReady:      *ckptDir != "",
		ReadyHighWater:     *readyHW,
	})
	if err != nil {
		fatal("discserver: invalid configuration", "err", err)
	}

	// Durable checkpointing: recover before serving, then checkpoint in the
	// background every -checkpoint-every strides. The server starts
	// not-ready in this mode and flips ready only once recovery resolves,
	// so a load balancer probing /readyz never routes to a window that is
	// about to be replaced by a restore.
	var runner *ckpt.Runner
	runnerDone := make(chan struct{})
	if *ckptDir != "" {
		store, err := ckpt.Open(*ckptDir,
			ckpt.WithMaxPayload(*ckptMax), ckpt.WithStoreLogger(logger))
		if err != nil {
			fatal("discserver: opening checkpoint store", "dir", *ckptDir, "err", err)
		}
		payload, gen, err := store.Recover()
		switch {
		case err == nil:
			restored, err := srv.ReadCheckpoint(bytes.NewReader(payload))
			if err != nil {
				// A checkpoint that validates at the frame layer but does not
				// restore (wrong config, wrong schema) is an operator error;
				// starting fresh would silently discard the window they meant
				// to keep.
				fatal("discserver: checkpoint does not restore", "generation", gen, "err", err)
			}
			logger.Info("recovered from checkpoint",
				"generation", gen, "bytes", len(payload), "window_points", restored, "stride", srv.Strides())
		case errors.Is(err, ckpt.ErrNoCheckpoint):
			logger.Info("no checkpoint found, starting fresh", "dir", *ckptDir)
		case errors.Is(err, ckpt.ErrNoValidCheckpoint):
			logger.Warn("checkpoints exist but none is valid, starting fresh", "dir", *ckptDir, "err", err)
		default:
			fatal("discserver: checkpoint recovery", "err", err)
		}
		srv.SetReady(true)
		cm := obs.NewCheckpointMetrics(srv.Registry())
		runner = ckpt.NewRunner(store, srv, *ckptEvery,
			ckpt.WithObserver(cm), ckpt.WithRunnerLogger(logger),
			ckpt.WithRunnerTracer(srv.Tracer()))
	} else {
		close(runnerDone)
	}

	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	logger.Info("discserver listening",
		"addr", *addr, "eps", *eps, "minpts", *minPts, "window", *win, "stride", *stride,
		"pprof", *pprofOn, "trace", *traceOn, "checkpoints", describeCkpt(*ckptDir, *ckptEvery))

	// Serve until SIGINT/SIGTERM, then drain: Shutdown stops the listener
	// and waits for in-flight handlers (a checkpoint save mid-write, a
	// scrape) up to the deadline instead of cutting them off.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if runner != nil {
		go func() {
			defer close(runnerDone)
			runner.Run(ctx)
		}()
	}
	errc := make(chan error, 1)
	go func() { errc <- httpServer.ListenAndServe() }()
	select {
	case err := <-errc:
		fatal("discserver: serve failed", "err", err)
	case <-ctx.Done():
		stop()
		logger.Info("signal received, draining", "deadline", *drain)
		shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpServer.Shutdown(shutCtx); err != nil {
			fatal("discserver: shutdown", "err", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal("discserver: serve failed", "err", err)
		}
		// Wait for the runner's final shutdown checkpoint: the listener is
		// closed, so no new strides can arrive while it writes.
		<-runnerDone
		logger.Info("shut down cleanly")
	}
}

func describeCkpt(dir string, every uint64) string {
	if dir == "" {
		return "off"
	}
	return fmt.Sprintf("%s every %d strides", dir, every)
}
