// Command discserver runs the DISC stream-clustering HTTP service: ingest
// points, query clusters and their evolution over a sliding window.
//
// Usage:
//
//	discserver -addr :8080 -dims 2 -eps 0.5 -minpts 5 -window 10000 -stride 500
//
// Endpoints:
//
//	POST /ingest        JSON array of {"id":1,"time":2,"coords":[x,y]}
//	GET  /clusters      cluster census of the current window
//	GET  /points/{id}   assignment of one point
//	GET  /events        cluster-evolution log (?since=<seq>)
//	GET  /stats         engine work counters and configuration
//	GET  /checkpoint    binary service checkpoint (engine + window position)
//	POST /checkpoint    restore from a checkpoint and resume the stream
//	GET  /healthz       liveness
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"disc/internal/model"
	"disc/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dims := flag.Int("dims", 2, "coordinates per point (1-4)")
	eps := flag.Float64("eps", 1.0, "distance threshold ε")
	minPts := flag.Int("minpts", 5, "density threshold τ")
	win := flag.Int("window", 10000, "sliding window size in points")
	stride := flag.Int("stride", 500, "stride size in points")
	flag.Parse()

	srv, err := server.New(server.Config{
		Cluster: model.Config{Dims: *dims, Eps: *eps, MinPts: *minPts},
		Window:  *win,
		Stride:  *stride,
	})
	if err != nil {
		log.Fatalf("discserver: %v", err)
	}
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("discserver listening on %s (eps=%g minPts=%d window=%d stride=%d)\n",
		*addr, *eps, *minPts, *win, *stride)
	log.Fatal(httpServer.ListenAndServe())
}
