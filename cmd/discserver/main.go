// Command discserver runs the DISC stream-clustering HTTP service: ingest
// points, query clusters and their evolution over a sliding window, and
// scrape live telemetry. With -checkpoint-dir it also checkpoints itself
// durably every -checkpoint-every strides and auto-recovers from the newest
// valid checkpoint on startup.
//
// Usage:
//
//	discserver -addr :8080 -dims 2 -eps 0.5 -minpts 5 -window 10000 -stride 500 \
//	    -checkpoint-dir /var/lib/discserver -checkpoint-every 20
//
// Endpoints:
//
//	POST /ingest        JSON array of {"id":1,"time":2,"coords":[x,y]}
//	GET  /clusters      cluster census of the current window
//	GET  /points/{id}   assignment of one point
//	GET  /events        cluster-evolution log (?since=<seq>)
//	GET  /stats         engine work counters and configuration
//
// The four query endpoints are lock-free: they serve an immutable
// per-stride view (reads never block ingestion) and stamp each response
// with the stride it reflects via X-Disc-Stride and a strong ETag
// (If-None-Match returns 304 until the next stride).
//
//	GET  /metrics       Prometheus text exposition (per-stride histograms)
//	GET  /debug/vars    expvar JSON (registry published as "disc")
//	GET  /debug/pprof/  runtime profiles (only with -pprof)
//	GET  /checkpoint    binary service checkpoint (engine + window position)
//	POST /checkpoint    restore from a checkpoint and resume the stream
//	GET  /healthz       liveness
//
// On SIGINT/SIGTERM the server shuts down gracefully: in-flight requests
// (including a final checkpoint download or metrics scrape) get up to
// -drain to complete before the listener closes, and — when durable
// checkpointing is on — a final checkpoint generation is written so no
// completed stride is lost.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"disc/internal/ckpt"
	"disc/internal/model"
	"disc/internal/obs"
	"disc/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dims := flag.Int("dims", 2, "coordinates per point (1-4)")
	eps := flag.Float64("eps", 1.0, "distance threshold ε")
	minPts := flag.Int("minpts", 5, "density threshold τ")
	win := flag.Int("window", 10000, "sliding window size in points")
	stride := flag.Int("stride", 500, "stride size in points")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown deadline for in-flight requests")
	ckptDir := flag.String("checkpoint-dir", "", "directory for durable checkpoints (empty = durability off)")
	ckptEvery := flag.Uint64("checkpoint-every", 20, "checkpoint every N strides")
	ckptMax := flag.Int64("checkpoint-max-bytes", server.DefaultMaxCheckpointBytes,
		"largest checkpoint accepted on restore (POST /checkpoint and recovery)")
	flag.Parse()

	srv, err := server.New(server.Config{
		Cluster:            model.Config{Dims: *dims, Eps: *eps, MinPts: *minPts},
		Window:             *win,
		Stride:             *stride,
		EnablePprof:        *pprofOn,
		MaxCheckpointBytes: *ckptMax,
	})
	if err != nil {
		log.Fatalf("discserver: %v", err)
	}

	// Durable checkpointing: recover before serving, then checkpoint in the
	// background every -checkpoint-every strides.
	var runner *ckpt.Runner
	runnerDone := make(chan struct{})
	if *ckptDir != "" {
		store, err := ckpt.Open(*ckptDir,
			ckpt.WithMaxPayload(*ckptMax), ckpt.WithStoreLogf(log.Printf))
		if err != nil {
			log.Fatalf("discserver: %v", err)
		}
		payload, gen, err := store.Recover()
		switch {
		case err == nil:
			restored, err := srv.ReadCheckpoint(bytes.NewReader(payload))
			if err != nil {
				// A checkpoint that validates at the frame layer but does not
				// restore (wrong config, wrong schema) is an operator error;
				// starting fresh would silently discard the window they meant
				// to keep.
				log.Fatalf("discserver: checkpoint generation %d does not restore: %v", gen, err)
			}
			log.Printf("discserver: recovered generation %d (%d bytes, window of %d points)",
				gen, len(payload), restored)
		case errors.Is(err, ckpt.ErrNoCheckpoint):
			log.Printf("discserver: no checkpoint in %s, starting fresh", *ckptDir)
		case errors.Is(err, ckpt.ErrNoValidCheckpoint):
			log.Printf("discserver: WARNING: checkpoints exist in %s but none is valid, starting fresh: %v", *ckptDir, err)
		default:
			log.Fatalf("discserver: checkpoint recovery: %v", err)
		}
		cm := obs.NewCheckpointMetrics(srv.Registry())
		runner = ckpt.NewRunner(store, srv, *ckptEvery,
			ckpt.WithObserver(cm), ckpt.WithRunnerLogf(log.Printf))
	} else {
		close(runnerDone)
	}

	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("discserver listening on %s (eps=%g minPts=%d window=%d stride=%d pprof=%v checkpoints=%s)\n",
		*addr, *eps, *minPts, *win, *stride, *pprofOn, describeCkpt(*ckptDir, *ckptEvery))

	// Serve until SIGINT/SIGTERM, then drain: Shutdown stops the listener
	// and waits for in-flight handlers (a checkpoint save mid-write, a
	// scrape) up to the deadline instead of cutting them off.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if runner != nil {
		go func() {
			defer close(runnerDone)
			runner.Run(ctx)
		}()
	}
	errc := make(chan error, 1)
	go func() { errc <- httpServer.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatalf("discserver: %v", err)
	case <-ctx.Done():
		stop()
		fmt.Printf("discserver: signal received, draining for up to %v\n", *drain)
		shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpServer.Shutdown(shutCtx); err != nil {
			log.Fatalf("discserver: shutdown: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("discserver: %v", err)
		}
		// Wait for the runner's final shutdown checkpoint: the listener is
		// closed, so no new strides can arrive while it writes.
		<-runnerDone
		fmt.Println("discserver: shut down cleanly")
	}
}

func describeCkpt(dir string, every uint64) string {
	if dir == "" {
		return "off"
	}
	return fmt.Sprintf("%s every %d strides", dir, every)
}
