package disc

import "sync"

// ConcurrentReadable is the marker interface an engine implements to declare
// its query methods (Name, Assignment, Snapshot, Stats) free of writes —
// including hidden ones such as union-find path compression or index
// statistics — and therefore safe for any number of concurrent callers
// while no mutation is in flight. The DISC engine implements it; baseline
// engines that mutate internal state on reads must not.
type ConcurrentReadable interface {
	ConcurrentReadable()
}

// Synchronized wraps any engine with a lock, making the full Engine
// interface safe for concurrent use by multiple goroutines: one goroutine
// can feed the stream while others query assignments or snapshots.
//
// If the engine declares ConcurrentReadable, queries are served under a
// shared read lock and run concurrently with each other, serializing only
// against Advance and ResetStats. For every other engine, queries fall back
// to the exclusive lock — path-compressing union-finds and statistics
// counters make many "read" paths writes in disguise, and a shared lock
// would race them.
func Synchronized(e Engine) Engine {
	_, ro := e.(ConcurrentReadable)
	return &syncedEngine{inner: e, roQueries: ro}
}

type syncedEngine struct {
	mu        sync.RWMutex
	inner     Engine
	roQueries bool
}

// rlock acquires the shared lock when the inner engine's queries are
// read-only, the exclusive lock otherwise; it returns the matching unlock.
func (s *syncedEngine) rlock() func() {
	if s.roQueries {
		s.mu.RLock()
		return s.mu.RUnlock
	}
	s.mu.Lock()
	return s.mu.Unlock
}

func (s *syncedEngine) Name() string {
	defer s.rlock()()
	return s.inner.Name()
}

func (s *syncedEngine) Advance(in, out []Point) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner.Advance(in, out)
}

func (s *syncedEngine) Assignment(id int64) (Assignment, bool) {
	defer s.rlock()()
	return s.inner.Assignment(id)
}

func (s *syncedEngine) Snapshot() map[int64]Assignment {
	defer s.rlock()()
	return s.inner.Snapshot()
}

func (s *syncedEngine) Stats() Stats {
	defer s.rlock()()
	return s.inner.Stats()
}

func (s *syncedEngine) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner.ResetStats()
}
