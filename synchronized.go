package disc

import "sync"

// Synchronized wraps any engine with a mutex, making the full Engine
// interface safe for concurrent use by multiple goroutines. The engines
// themselves are single-threaded (matching the paper's setting); use this
// wrapper when one goroutine feeds the stream while others query
// assignments or snapshots.
//
// Note that Advance still serializes against queries: the wrapper provides
// safety, not parallelism.
func Synchronized(e Engine) Engine {
	return &syncedEngine{inner: e}
}

type syncedEngine struct {
	mu    sync.Mutex
	inner Engine
}

func (s *syncedEngine) Name() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Name()
}

func (s *syncedEngine) Advance(in, out []Point) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner.Advance(in, out)
}

func (s *syncedEngine) Assignment(id int64) (Assignment, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Assignment(id)
}

func (s *syncedEngine) Snapshot() map[int64]Assignment {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Snapshot()
}

func (s *syncedEngine) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Stats()
}

func (s *syncedEngine) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner.ResetStats()
}
