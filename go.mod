module disc

go 1.22
