package disc_test

import (
	"math/rand"
	"sync"
	"testing"

	"disc"
)

func streamPoints(rng *rand.Rand, n int) []disc.Point {
	pts := make([]disc.Point, n)
	for i := range pts {
		var x, y float64
		if rng.Float64() < 0.2 {
			x, y = rng.Float64()*40, rng.Float64()*40
		} else {
			c := float64(rng.Intn(3)) * 12
			x, y = c+rng.NormFloat64()*1.5, c+rng.NormFloat64()*1.5
		}
		pts[i] = disc.NewPoint(int64(i), x, y)
		pts[i].Time = int64(i)
	}
	return pts
}

// TestPublicAPIRoundTrip exercises the whole public surface the way the
// README quick start does.
func TestPublicAPIRoundTrip(t *testing.T) {
	cfg := disc.Config{Dims: 2, Eps: 2, MinPts: 5}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	data := streamPoints(rng, 600)

	eng := disc.NewDISC(cfg)
	slider, err := disc.NewCountSlider(200, 50)
	if err != nil {
		t.Fatal(err)
	}
	var lastWindow []disc.Point
	for _, p := range data {
		if step := slider.Push(p); step != nil {
			eng.Advance(step.In, step.Out)
			lastWindow = append(lastWindow[:0], step.Window...)
		}
	}
	if len(lastWindow) != 200 {
		t.Fatalf("window size %d", len(lastWindow))
	}
	// The snapshot must be exactly DBSCAN's clustering of the window.
	want := disc.RunDBSCAN(lastWindow, cfg)
	if err := disc.SameClustering(eng.Snapshot(), want, lastWindow, cfg); err != nil {
		t.Fatal(err)
	}
	if eng.Stats().Strides == 0 {
		t.Fatal("no strides recorded")
	}
}

// TestAllEnginesImplementInterface drives every constructor through the
// shared Engine interface on a common workload.
func TestAllEnginesImplementInterface(t *testing.T) {
	cfg := disc.Config{Dims: 2, Eps: 2, MinPts: 5}
	rng := rand.New(rand.NewSource(2))
	data := streamPoints(rng, 400)
	steps, err := disc.Steps(data, 200, 50)
	if err != nil {
		t.Fatal(err)
	}

	extran, err := disc.NewExtraN(cfg, 200, 50)
	if err != nil {
		t.Fatal(err)
	}
	dbs, err := disc.NewDBStream(cfg, disc.DBStreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	edm, err := disc.NewEDMStream(cfg, disc.EDMStreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rho, err := disc.NewRho2DBSCAN(cfg, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	engines := []disc.Engine{
		disc.NewDISC(cfg),
		disc.NewDISC(cfg, disc.WithMSBFS(false), disc.WithEpochProbing(false)),
		disc.NewDBSCAN(cfg),
		disc.NewIncDBSCAN(cfg),
		extran, dbs, edm, rho,
	}
	for _, eng := range engines {
		for _, st := range steps {
			eng.Advance(st.In, st.Out)
		}
		snap := eng.Snapshot()
		if len(snap) == 0 {
			t.Errorf("%s: empty snapshot", eng.Name())
		}
		if eng.Name() == "" {
			t.Error("engine without a name")
		}
		eng.ResetStats()
	}
}

func TestARIandLabelsPublic(t *testing.T) {
	a := map[int64]int{1: 1, 2: 1, 3: 2}
	if disc.ARI(a, a) != 1 {
		t.Fatal("ARI(self) != 1")
	}
	snap := map[int64]disc.Assignment{5: {Label: disc.Core, ClusterID: 9}}
	if disc.ClusterLabels(snap)[5] != 9 {
		t.Fatal("ClusterLabels lost a cluster id")
	}
}

func TestGenerateDatasetPublic(t *testing.T) {
	names := disc.DatasetNames()
	if len(names) != 5 {
		t.Fatalf("DatasetNames = %v", names)
	}
	ds, err := disc.GenerateDataset("maze", 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Points) != 100 || ds.Truth == nil {
		t.Fatalf("maze dataset malformed: %d points", len(ds.Points))
	}
	if _, err := disc.GenerateDataset("bogus", 10, 1); err == nil {
		t.Fatal("bogus dataset accepted")
	}
}

func TestTimeSliderPublic(t *testing.T) {
	cfg := disc.Config{Dims: 2, Eps: 2, MinPts: 3}
	eng := disc.NewDISC(cfg)
	slider, err := disc.NewTimeSlider(100, 25)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := int64(0); i < 500; i++ {
		p := disc.NewPoint(i, rng.NormFloat64()*3, rng.NormFloat64()*3)
		p.Time = i
		if step := slider.Push(p); step != nil {
			eng.Advance(step.In, step.Out)
		}
	}
	if eng.Stats().Strides == 0 {
		t.Fatal("time-based windows produced no strides")
	}
}

// TestCountAndTimeWindowsAgree: §II-B of the paper says DISC is agnostic to
// whether the window is count-based or time-based. With one point per time
// unit the two models define identical windows, so the clusterings must be
// identical after every slide.
func TestCountAndTimeWindowsAgree(t *testing.T) {
	cfg := disc.Config{Dims: 2, Eps: 2, MinPts: 5}
	rng := rand.New(rand.NewSource(9))
	data := streamPoints(rng, 600) // Time == index by construction

	countEng := disc.NewDISC(cfg)
	timeEng := disc.NewDISC(cfg)
	countSlider, err := disc.NewCountSlider(200, 50)
	if err != nil {
		t.Fatal(err)
	}
	timeSlider, err := disc.NewTimeSlider(200, 50)
	if err != nil {
		t.Fatal(err)
	}

	var lastCountWindow []disc.Point
	for _, p := range data {
		if st := countSlider.Push(p); st != nil {
			countEng.Advance(st.In, st.Out)
			lastCountWindow = append(lastCountWindow[:0], st.Window...)
		}
		if st := timeSlider.Push(p); st != nil {
			timeEng.Advance(st.In, st.Out)
		}
	}
	// The time-based slider triggers on the crossing point, so it can lag
	// the count-based one by a partial stride; compare both to the DBSCAN
	// oracle over their own windows instead of to each other directly, and
	// additionally require the count engine's final window labeling to be
	// exactly DBSCAN's.
	want := disc.RunDBSCAN(lastCountWindow, cfg)
	if err := disc.SameClustering(countEng.Snapshot(), want, lastCountWindow, cfg); err != nil {
		t.Fatalf("count-based: %v", err)
	}
	if timeEng.Stats().Strides == 0 {
		t.Fatal("time-based slider never fired")
	}
}

// TestSynchronizedUnderRace hammers a wrapped engine from multiple
// goroutines; run with -race to validate the locking.
func TestSynchronizedUnderRace(t *testing.T) {
	cfg := disc.Config{Dims: 2, Eps: 2, MinPts: 4}
	eng := disc.Synchronized(disc.NewDISC(cfg))
	rng := rand.New(rand.NewSource(77))
	data := streamPoints(rng, 2000)
	steps, err := disc.Steps(data, 400, 100)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, st := range steps {
			eng.Advance(st.In, st.Out)
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-done:
					return
				default:
				}
				eng.Assignment(int64(r.Intn(2000)))
				if r.Intn(10) == 0 {
					eng.Snapshot()
				}
				eng.Stats()
			}
		}(int64(g))
	}
	<-done
	wg.Wait()
	if eng.Name() != "DISC" {
		t.Fatal("wrapper changed the name")
	}
	if eng.Stats().Strides != int64(len(steps)) {
		t.Fatalf("strides %d, want %d", eng.Stats().Strides, len(steps))
	}
}
