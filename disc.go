// Package disc is a Go implementation of DISC — Density-based Incremental
// Striding Clustering (Kim, Koo, Kim, Moon: ICDE 2021) — an exact
// incremental density-based clustering algorithm for streaming data under
// the sliding-window model, together with every baseline its evaluation
// compares against.
//
// DISC produces clusterings identical to DBSCAN after every window advance
// while doing work proportional to the change, not the window: the points
// entering and leaving a stride are consolidated into ex-cores and
// neo-cores, cluster evolution (split, merge, shrink, expansion, emergence,
// dissipation) is decided by checking density-connectedness only over the
// minimal bonding cores of each changed component, and those checks run as
// a Multi-Starter BFS against an R-tree probed with visit epochs.
//
// # Quick start
//
//	cfg := disc.Config{Dims: 2, Eps: 0.5, MinPts: 5}
//	eng := disc.NewDISC(cfg)
//	slider, _ := disc.NewCountSlider(10000, 500) // window, stride
//	for p := range stream {
//	    if step := slider.Push(p); step != nil {
//	        eng.Advance(step.In, step.Out)
//	        fmt.Println(eng.Stats())
//	    }
//	}
//	labels := eng.Snapshot()
//
// All engines implement the same Engine interface, so DBSCAN, Incremental
// DBSCAN, EXTRA-N, DBSTREAM, EDMStream, and ρ²-DBSCAN are drop-in
// replacements for comparison studies. See the examples directory and
// EXPERIMENTS.md for complete programs and the paper-figure reproduction
// harness.
package disc

import (
	"io"

	"disc/internal/core"
	"disc/internal/datasets"
	"disc/internal/dbscan"
	"disc/internal/dbstream"
	"disc/internal/denstream"
	"disc/internal/dstream"
	"disc/internal/edmstream"
	"disc/internal/extran"
	"disc/internal/geom"
	"disc/internal/incdbscan"
	"disc/internal/metrics"
	"disc/internal/model"
	"disc/internal/params"
	"disc/internal/pardbscan"
	"disc/internal/rhodbscan"
	"disc/internal/window"
)

// Point is one stream record: unique id, position, arrival timestamp.
type Point = model.Point

// Label is a point's density category: Core, Border, or Noise.
type Label = model.Label

// Density categories of a point, following Ester et al.'s definitions.
const (
	Core   = model.Core
	Border = model.Border
	Noise  = model.Noise
)

// NoCluster is the cluster id of noise points.
const NoCluster = model.NoCluster

// Assignment is the clustering outcome for one point: its label and, unless
// it is noise, the id of its cluster.
type Assignment = model.Assignment

// Config carries the two DBSCAN thresholds (ε and MinPts) plus the data
// dimensionality (1–4).
type Config = model.Config

// Stats counts the work an engine performed: range searches, index node
// accesses, strides, splits, merges, and resident bookkeeping size.
type Stats = model.Stats

// Engine is the common interface of every clustering algorithm in this
// package: Advance applies one window slide, Snapshot returns the current
// labeling.
type Engine = model.Engine

// NewPoint builds a Point from an id and 1–4 coordinates.
func NewPoint(id int64, coords ...float64) Point {
	return Point{ID: id, Pos: geom.NewVec(coords...)}
}

// DISCOption configures optional DISC behaviors.
type DISCOption = core.Option

// WithMSBFS enables (default) or disables the Multi-Starter BFS
// optimization; see the Fig. 8 ablation of the paper.
func WithMSBFS(on bool) DISCOption { return core.WithMSBFS(on) }

// WithEpochProbing enables (default) or disables epoch-stamped reuse of the
// reachability scratch state; disabling rebuilds fresh visited state per
// connectivity check (the Fig. 8-style ablation), with identical results.
func WithEpochProbing(on bool) DISCOption { return core.WithEpochProbing(on) }

// WithWorkers sets how many goroutines DISC fans its ε-range searches over
// — both COLLECT's per-point searches and CLUSTER's component captures and
// MS-BFS connectivity checks; n <= 0 selects GOMAXPROCS, 1 (the default)
// stays sequential. Clustering output, statistics, and the event stream are
// bit-identical for every worker count — the searches are read-only and
// their private result buffers are folded in a fixed order — so this is
// purely a throughput knob. The setting is persisted in checkpoints.
func WithWorkers(n int) DISCOption { return core.WithWorkers(n) }

// ConnStrategy selects how DISC answers density-connectivity queries over
// minimal bonding cores during CLUSTER.
type ConnStrategy = core.ConnStrategy

// Connectivity strategies. Every strategy produces bit-identical labels,
// statistics, and events; they differ only in per-stride cost.
const (
	// ConnMSBFS recomputes components per stride with the Multi-Starter BFS
	// traversal (the paper's Algorithm 3) — the default and the
	// always-available reference.
	ConnMSBFS = core.ConnMSBFS
	// ConnDynamic answers from an incrementally maintained
	// dynamic-connectivity forest over the core-adjacency graph — cheaper
	// under churn-heavy workloads where components rarely change shape.
	ConnDynamic = core.ConnDynamic
)

// WithConnectivity selects the connectivity strategy (default ConnMSBFS).
// The setting is persisted in checkpoints; passed to LoadDISC it overrides
// the persisted strategy.
func WithConnectivity(s ConnStrategy) DISCOption { return core.WithConnectivity(s) }

// WithGridIndex swaps DISC's R-tree for a hash grid with the given cell
// side (≤ 0 selects ε/2) — an index-choice ablation; epoch probing then
// degrades to an external visited set.
func WithGridIndex(side float64) DISCOption { return core.WithGridIndex(side) }

// WithKDTreeIndex swaps DISC's R-tree for a bucket k-d tree — the third
// index-choice ablation.
func WithKDTreeIndex() DISCOption { return core.WithKDTreeIndex() }

// Event describes one cluster-evolution occurrence reported by DISC.
type Event = core.Event

// EventType enumerates the cluster evolution kinds of the paper's §III-C.
type EventType = core.EventType

// Cluster evolution kinds, in the paper's terminology.
const (
	Emergence   = core.Emergence
	Expansion   = core.Expansion
	Merger      = core.Merger
	Split       = core.Split
	Shrink      = core.Shrink
	Dissipation = core.Dissipation
)

// WithEventHandler subscribes a callback to DISC's cluster-evolution events
// (emergence, expansion, merger, split, shrink, dissipation), invoked
// synchronously during Advance.
func WithEventHandler(fn func(Event)) DISCOption { return core.WithEventHandler(fn) }

// StrideRecord is the per-Advance telemetry record DISC emits to an
// attached Observer: phase durations, Δin/Δout sizes, ex/neo-core counts,
// search and epoch-prune work, MS-BFS merges, and cluster-evolution event
// tallies — everything the paper's §VI-D cost drill-down measures, scoped
// to one stride.
type StrideRecord = core.StrideRecord

// Observer receives one StrideRecord per Advance, synchronously.
type Observer = core.Observer

// ObserverFunc adapts a plain function to the Observer interface.
type ObserverFunc = core.ObserverFunc

// WithObserver attaches a per-stride telemetry observer to DISC. With no
// observer attached the telemetry path costs a single nil check.
func WithObserver(o Observer) DISCOption { return core.WithObserver(o) }

// NewDISC returns the DISC engine — exact incremental clustering optimized
// for batched window strides. It panics if cfg is invalid (use
// cfg.Validate to pre-check).
func NewDISC(cfg Config, opts ...DISCOption) *core.Engine { return core.New(cfg, opts...) }

// LoadDISC restores a DISC engine from a checkpoint written by its
// SaveSnapshot method, optionally re-attaching options that do not
// serialize (such as an event handler).
func LoadDISC(r io.Reader, opts ...DISCOption) (*core.Engine, error) {
	return core.LoadEngine(r, opts...)
}

// NewDBSCAN returns the from-scratch DBSCAN baseline engine: the R-tree is
// maintained incrementally but every Advance recomputes all labels.
func NewDBSCAN(cfg Config) *dbscan.Engine { return dbscan.New(cfg) }

// RunDBSCAN clusters a static point set with classic DBSCAN and returns the
// assignment of every point.
func RunDBSCAN(points []Point, cfg Config) map[int64]Assignment {
	return dbscan.Run(points, cfg)
}

// RunParallelDBSCAN clusters a static point set with the grid-partitioned
// parallel DBSCAN (workers <= 0 selects GOMAXPROCS). The result is
// identical to RunDBSCAN up to cluster renaming — useful for bootstrapping
// very large initial windows.
func RunParallelDBSCAN(points []Point, cfg Config, workers int) map[int64]Assignment {
	return pardbscan.Run(points, cfg, workers)
}

// NewIncDBSCAN returns the Incremental DBSCAN engine (Ester et al. 1998):
// exact, processing one arrival or departure at a time.
func NewIncDBSCAN(cfg Config) *incdbscan.Engine { return incdbscan.New(cfg) }

// NewExtraN returns the EXTRA-N engine (Yang et al. 2009): exact,
// range-search-free expiry via per-slide predicted neighbor counts. The
// window must be a positive multiple of the stride.
func NewExtraN(cfg Config, windowSize, stride int) (*extran.Engine, error) {
	return extran.New(cfg, windowSize, stride)
}

// DBStreamOptions are the DBSTREAM tuning knobs; zero values select
// defaults.
type DBStreamOptions = dbstream.Options

// NewDBStream returns the DBSTREAM engine (Hahsler & Bolaños 2016):
// summarization-based, insertion-only, shared-density micro-clusters.
func NewDBStream(cfg Config, opt DBStreamOptions) (*dbstream.Engine, error) {
	return dbstream.New(cfg, opt)
}

// EDMStreamOptions are the EDMStream tuning knobs; zero values select
// defaults.
type EDMStreamOptions = edmstream.Options

// NewEDMStream returns the EDMStream-style engine (Gong et al. 2017):
// summarization-based, insertion-only, density-peak dependency tree over
// cluster-cells.
func NewEDMStream(cfg Config, opt EDMStreamOptions) (*edmstream.Engine, error) {
	return edmstream.New(cfg, opt)
}

// DenStreamOptions are the DenStream tuning knobs; zero values select
// defaults.
type DenStreamOptions = denstream.Options

// NewDenStream returns the DenStream engine (Cao et al. 2006): the seminal
// decaying micro-cluster method, included as an extra summarization
// baseline beyond the paper's line-up.
func NewDenStream(cfg Config, opt DenStreamOptions) (*denstream.Engine, error) {
	return denstream.New(cfg, opt)
}

// DStreamOptions are the D-Stream tuning knobs; zero values select
// defaults.
type DStreamOptions = dstream.Options

// NewDStream returns the D-Stream engine (Chen & Tu 2007): density-grid
// stream clustering, included as an extra summarization baseline beyond the
// paper's line-up.
func NewDStream(cfg Config, opt DStreamOptions) (*dstream.Engine, error) {
	return dstream.New(cfg, opt)
}

// NewRho2DBSCAN returns the ρ-double-approximate dynamic DBSCAN engine (Gan
// & Tao 2017): grid-based, exact core status, ρ-approximate connectivity.
func NewRho2DBSCAN(cfg Config, rho float64) (*rhodbscan.Engine, error) {
	return rhodbscan.New(cfg, rho)
}

// Step is one window advance: the points entering (In), leaving (Out), and
// the resulting window contents.
type Step = window.Step

// CountSlider buffers a stream into count-based window steps.
type CountSlider = window.CountSlider

// TimeSlider buffers a stream into time-based window steps.
type TimeSlider = window.TimeSlider

// NewCountSlider returns a slider for a count-based window: the window
// holds windowSize points and advances every stride arrivals.
func NewCountSlider(windowSize, stride int) (*CountSlider, error) {
	return window.NewCountSlider(windowSize, stride)
}

// NewTimeSlider returns a slider for a time-based window measured in the
// units of Point.Time.
func NewTimeSlider(windowSpan, stride int64) (*TimeSlider, error) {
	return window.NewTimeSlider(windowSpan, stride)
}

// Steps slices a finite dataset into count-based window steps (the first
// fills the window, each subsequent one advances by stride).
func Steps(data []Point, windowSize, stride int) ([]Step, error) {
	return window.Steps(data, windowSize, stride)
}

// ARI computes the Adjusted Rand Index between two labelings (point id →
// cluster id); 1 means identical partitions.
func ARI(truth, pred map[int64]int) float64 { return metrics.ARI(truth, pred) }

// ClusterLabels extracts a point-id → cluster-id map from a snapshot.
func ClusterLabels(snap map[int64]Assignment) map[int64]int { return metrics.Labels(snap) }

// SameClustering verifies two snapshots describe the same clustering up to
// cluster renaming (and border-assignment ambiguity); nil means equivalent.
func SameClustering(got, want map[int64]Assignment, pts []Point, cfg Config) error {
	return metrics.SameClustering(got, want, pts, cfg)
}

// Dataset is a generated benchmark stream with optional ground truth.
type Dataset = datasets.Dataset

// GenerateDataset produces one of the built-in synthetic benchmark streams:
// "dtg", "geolife", "covid", "iris", or "maze" (see DESIGN.md for how each
// mirrors the paper's datasets).
func GenerateDataset(name string, n int, seed int64) (Dataset, error) {
	return datasets.ByName(name, n, seed)
}

// DatasetNames lists the built-in generator names.
func DatasetNames() []string { return datasets.Names() }

// ParamSuggestion is an (ε, MinPts) estimate from the K-distance heuristic,
// including the curve it was read from.
type ParamSuggestion = params.Suggestion

// SuggestParams estimates ε and MinPts for a sample of the stream with the
// K-distance-graph heuristic the paper's evaluation uses to pick its
// Table II thresholds. k is the neighbor rank (MinPts becomes k+1; see
// DefaultK); sample bounds the number of probed points (≤ 0 probes all).
func SuggestParams(pts []Point, dims, k, sample int, seed int64) (ParamSuggestion, error) {
	return params.Suggest(pts, dims, k, sample, seed)
}

// DefaultK returns the conventional K-distance rank for a dimensionality:
// 4 in 2-D (Ester et al.), 2·dims-1 otherwise (Schubert et al.).
func DefaultK(dims int) int { return params.DefaultK(dims) }
