// Benchmarks mapped one-to-one onto the tables and figures of the DISC
// paper's evaluation (§VI). Each benchmark measures one stride (one window
// advance) of the configuration the corresponding figure varies; the
// discbench command regenerates the full tables/series, while these give
// `go test -bench` visibility into every experimental axis.
//
//	Table II  -> the workload constructors used by every benchmark below
//	Fig. 4    -> BenchmarkFig4_* (stride sweep, per engine)
//	Fig. 5    -> BenchmarkFig5_* (window sweep)
//	Fig. 6    -> BenchmarkFig6_* (threshold sweep)
//	Fig. 7    -> search counts, reported as searches/stride metrics
//	Fig. 8    -> BenchmarkFig8_* (optimization ablation)
//	Fig. 9/10 -> BenchmarkFig9_*, BenchmarkFig10_* (quality line-up latency)
//	Fig. 11   -> BenchmarkFig11_* (DISC vs ρ² across ε)
//	Fig. 12   -> BenchmarkFig12_Snapshot (labeling extraction cost)
package disc_test

import (
	"fmt"
	"testing"

	"disc/internal/bench"
	"disc/internal/model"
	"disc/internal/window"
)

// benchScale shrinks the Table II windows so the whole -bench=. suite
// completes in minutes; discbench runs the full scale.
const benchScale = 0.2

type workload struct {
	dc     bench.DataConfig
	stride int
	steps  []window.Step
}

// mkWorkload builds the stride steps for one dataset at one stride ratio.
func mkWorkload(b *testing.B, dataset string, scale, ratio float64, mutate func(*bench.DataConfig)) workload {
	b.Helper()
	dc, err := bench.Defaults(dataset)
	if err != nil {
		b.Fatal(err)
	}
	dc = dc.Scaled(scale)
	if mutate != nil {
		mutate(&dc)
	}
	stride := dc.Window / 20
	if ratio > 0 {
		stride = int(float64(dc.Window) * ratio)
		if stride < 1 {
			stride = 1
		}
		for dc.Window%stride != 0 {
			stride--
		}
	}
	// Enough strides that b.N iterations rarely need an engine restart.
	ds, err := dc.Stream(stride, 64)
	if err != nil {
		b.Fatal(err)
	}
	steps, err := window.Steps(ds.Points, dc.Window, stride)
	if err != nil {
		b.Fatal(err)
	}
	return workload{dc: dc, stride: stride, steps: steps}
}

// benchStrides measures per-stride Advance cost of one engine kind over a
// workload, reporting range searches per stride as a custom metric (the
// Fig. 7 quantity).
func benchStrides(b *testing.B, kind string, w workload) {
	b.Helper()
	newEng := func() model.Engine {
		eng, err := bench.NewEngine(kind, w.dc.Cfg, w.dc.Window, w.stride)
		if err != nil {
			b.Fatal(err)
		}
		eng.Advance(w.steps[0].In, w.steps[0].Out)
		eng.ResetStats()
		return eng
	}
	eng := newEng()
	idx := 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if idx >= len(w.steps) {
			b.StopTimer()
			eng = newEng()
			idx = 1
			b.StartTimer()
		}
		st := w.steps[idx]
		eng.Advance(st.In, st.Out)
		idx++
	}
	b.StopTimer()
	s := eng.Stats()
	if s.Strides > 0 {
		b.ReportMetric(float64(s.RangeSearches)/float64(s.Strides), "searches/stride")
	}
	b.ReportMetric(float64(w.stride), "points/stride")
}

// --- Fig. 4: stride sweep ---------------------------------------------------

func BenchmarkFig4(b *testing.B) {
	for _, dataset := range bench.EvalDatasets() {
		for _, ratio := range []float64{0.01, 0.05, 0.25} {
			for _, kind := range []string{"dbscan", "disc", "incdbscan", "extran"} {
				b.Run(fmt.Sprintf("%s/stride=%g%%/%s", dataset, ratio*100, kind), func(b *testing.B) {
					benchStrides(b, kind, mkWorkload(b, dataset, benchScale, ratio, nil))
				})
			}
		}
	}
}

// --- Fig. 5: window sweep ---------------------------------------------------

func BenchmarkFig5(b *testing.B) {
	for _, factor := range []float64{0.5, 1, 2} {
		for _, kind := range []string{"dbscan", "disc", "incdbscan", "extran"} {
			b.Run(fmt.Sprintf("dtg/window=%gx/%s", factor, kind), func(b *testing.B) {
				benchStrides(b, kind, mkWorkload(b, "dtg", benchScale*factor, 0.05, nil))
			})
		}
	}
}

// --- Fig. 6: threshold sweep (DTG) -------------------------------------------

func BenchmarkFig6Eps(b *testing.B) {
	for _, f := range []float64{0.5, 1, 2, 4} {
		for _, kind := range []string{"disc", "incdbscan"} {
			b.Run(fmt.Sprintf("dtg/epsx%g/%s", f, kind), func(b *testing.B) {
				benchStrides(b, kind, mkWorkload(b, "dtg", benchScale, 0.05, func(dc *bench.DataConfig) {
					dc.Cfg.Eps *= f
				}))
			})
		}
	}
}

func BenchmarkFig6Tau(b *testing.B) {
	for _, f := range []float64{0.25, 1, 2} {
		for _, kind := range []string{"disc", "incdbscan"} {
			b.Run(fmt.Sprintf("dtg/taux%g/%s", f, kind), func(b *testing.B) {
				benchStrides(b, kind, mkWorkload(b, "dtg", benchScale, 0.05, func(dc *bench.DataConfig) {
					dc.Cfg.MinPts = max(2, int(float64(dc.Cfg.MinPts)*f))
				}))
			})
		}
	}
}

// --- Fig. 7: the searches/stride metric is attached to every benchmark by
// benchStrides; this pair isolates the paper's DISC vs IncDBSCAN comparison.

func BenchmarkFig7(b *testing.B) {
	for _, dataset := range bench.EvalDatasets() {
		for _, kind := range []string{"disc", "incdbscan"} {
			b.Run(dataset+"/"+kind, func(b *testing.B) {
				benchStrides(b, kind, mkWorkload(b, dataset, benchScale, 0.05, nil))
			})
		}
	}
}

// --- Fig. 8: optimization ablation -------------------------------------------

func BenchmarkFig8(b *testing.B) {
	for _, dataset := range bench.EvalDatasets() {
		for _, kind := range []string{"disc-plain", "disc-nomsbfs", "disc-noepoch", "disc"} {
			b.Run(dataset+"/"+kind, func(b *testing.B) {
				benchStrides(b, kind, mkWorkload(b, dataset, benchScale, 0.05, nil))
			})
		}
	}
}

// --- Index-choice ablation (DESIGN.md: R-tree vs hash grid backend) -----------

func BenchmarkIndexAblation(b *testing.B) {
	for _, dataset := range []string{"dtg", "maze"} {
		for _, kind := range []string{"disc", "disc-grid", "disc-kd"} {
			b.Run(dataset+"/"+kind, func(b *testing.B) {
				benchStrides(b, kind, mkWorkload(b, dataset, benchScale, 0.05, nil))
			})
		}
	}
}

// --- Figs. 9/10: quality line-up latency --------------------------------------

func BenchmarkFig9(b *testing.B) {
	for _, kind := range []string{"disc", "rho2-0.1", "rho2-0.001", "dbstream", "edmstream"} {
		b.Run("maze/"+kind, func(b *testing.B) {
			benchStrides(b, kind, mkWorkload(b, "maze", benchScale, 0.05, nil))
		})
	}
}

func BenchmarkFig10(b *testing.B) {
	for _, kind := range []string{"disc", "rho2-0.1", "rho2-0.001", "dbstream", "edmstream"} {
		b.Run("dtg/"+kind, func(b *testing.B) {
			benchStrides(b, kind, mkWorkload(b, "dtg", benchScale, 0.05, nil))
		})
	}
}

// --- Fig. 11: DISC vs ρ² across distance thresholds ---------------------------

func BenchmarkFig11(b *testing.B) {
	for _, eps := range []float64{0.2, 0.8, 3.2} {
		for _, kind := range []string{"disc", "rho2-0.001"} {
			b.Run(fmt.Sprintf("maze/eps=%g/%s", eps, kind), func(b *testing.B) {
				benchStrides(b, kind, mkWorkload(b, "maze", benchScale, 0.05, func(dc *bench.DataConfig) {
					dc.Cfg.Eps = eps
				}))
			})
		}
	}
}

// --- Fig. 12: labeling extraction --------------------------------------------

func BenchmarkFig12Snapshot(b *testing.B) {
	w := mkWorkload(b, "maze", benchScale, 0.05, nil)
	eng, err := bench.NewEngine("disc", w.dc.Cfg, w.dc.Window, w.stride)
	if err != nil {
		b.Fatal(err)
	}
	for _, st := range w.steps[:5] {
		eng.Advance(st.In, st.Out)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if snap := eng.Snapshot(); len(snap) == 0 {
			b.Fatal("empty snapshot")
		}
	}
}
