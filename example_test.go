package disc_test

import (
	"fmt"
	"sort"

	"disc"
)

// A tiny deterministic workload: two 4-point squares 2.8 units apart plus a
// far-away stray. With ε=1.1 and MinPts=3 each square is a cluster and the
// stray is noise.
func squares() []disc.Point {
	coords := [][2]float64{
		{0, 0}, {1, 0}, {0, 1}, {1, 1}, // square A
		{4, 0}, {5, 0}, {4, 1}, {5, 1}, // square B
		{20, 20}, // stray
	}
	pts := make([]disc.Point, len(coords))
	for i, c := range coords {
		pts[i] = disc.NewPoint(int64(i+1), c[0], c[1])
		pts[i].Time = int64(i)
	}
	return pts
}

// Example demonstrates one-shot clustering with the DBSCAN oracle and the
// label vocabulary shared by every engine.
func Example() {
	cfg := disc.Config{Dims: 2, Eps: 1.1, MinPts: 3}
	snap := disc.RunDBSCAN(squares(), cfg)

	clusters := map[int]int{}
	noise := 0
	for _, a := range snap {
		if a.ClusterID == disc.NoCluster {
			noise++
		} else {
			clusters[a.ClusterID]++
		}
	}
	sizes := make([]int, 0, len(clusters))
	for _, n := range clusters {
		sizes = append(sizes, n)
	}
	sort.Ints(sizes)
	fmt.Println("clusters:", len(clusters), "sizes:", sizes, "noise:", noise)
	// Output: clusters: 2 sizes: [4 4] noise: 1
}

// ExampleNewDISC shows incremental clustering: DISC tracks the window
// exactly as DBSCAN would label it, stride after stride.
func ExampleNewDISC() {
	cfg := disc.Config{Dims: 2, Eps: 1.1, MinPts: 3}
	eng := disc.NewDISC(cfg)

	pts := squares()
	eng.Advance(pts, nil) // initial window fill

	a1, _ := eng.Assignment(1)
	a5, _ := eng.Assignment(5)
	a9, _ := eng.Assignment(9)
	fmt.Println("p1:", a1.Label, "p5:", a5.Label, "p9:", a9.Label)
	fmt.Println("same cluster:", a1.ClusterID == a5.ClusterID)

	// Slide: square A leaves, nothing enters.
	eng.Advance(nil, pts[:4])
	_, stillThere := eng.Assignment(1)
	fmt.Println("p1 tracked after expiry:", stillThere)
	// Output:
	// p1: core p5: core p9: noise
	// same cluster: false
	// p1 tracked after expiry: false
}

// ExampleWithEventHandler subscribes to cluster-evolution events: adding a
// bridge point between the two squares merges them.
func ExampleWithEventHandler() {
	cfg := disc.Config{Dims: 2, Eps: 1.6, MinPts: 3}
	var events []string
	eng := disc.NewDISC(cfg, disc.WithEventHandler(func(ev disc.Event) {
		events = append(events, ev.Type.String())
	}))
	pts := squares()
	eng.Advance(pts[:8], nil) // both squares, no stray
	events = events[:0]

	// A point midway bridges the squares.
	bridge := disc.NewPoint(100, 2.5, 0.5)
	eng.Advance([]disc.Point{bridge}, nil)
	fmt.Println(events)
	// Output: [merger]
}

// ExampleNewCountSlider wires a raw stream into window steps.
func ExampleNewCountSlider() {
	slider, _ := disc.NewCountSlider(4, 2)
	var fired int
	for i := int64(0); i < 8; i++ {
		if step := slider.Push(disc.NewPoint(i, float64(i), 0)); step != nil {
			fired++
			fmt.Printf("step %d: in=%d out=%d window=%d\n",
				fired, len(step.In), len(step.Out), len(step.Window))
		}
	}
	// Output:
	// step 1: in=4 out=0 window=4
	// step 2: in=2 out=2 window=4
	// step 3: in=2 out=2 window=4
}

// ExampleARI compares two labelings.
func ExampleARI() {
	truth := map[int64]int{1: 1, 2: 1, 3: 2, 4: 2}
	same := map[int64]int{1: 9, 2: 9, 3: 7, 4: 7} // renamed but identical
	flat := map[int64]int{1: 1, 2: 1, 3: 1, 4: 1} // everything one cluster
	fmt.Printf("renamed: %.2f\n", disc.ARI(truth, same))
	fmt.Printf("flat:    %.2f\n", disc.ARI(truth, flat))
	// Output:
	// renamed: 1.00
	// flat:    0.00
}

// ExampleSameClustering verifies engine output against a reference.
func ExampleSameClustering() {
	cfg := disc.Config{Dims: 2, Eps: 1.1, MinPts: 3}
	pts := squares()
	eng := disc.NewDISC(cfg)
	eng.Advance(pts, nil)
	err := disc.SameClustering(eng.Snapshot(), disc.RunDBSCAN(pts, cfg), pts, cfg)
	fmt.Println("equivalent:", err == nil)
	// Output: equivalent: true
}
